(* Memory disambiguation and array banking.

   Twill's hardware threads serialize every load/store through the one
   module-shared memory port, so the scheduler chains all memory traffic
   into a single total order.  This module proves independence between
   accesses so that order can be split per bank:

   - base-object separation: Mini-C addresses flow only through globals,
     allocas, geps and array arguments (no casts, no address-of on
     scalars), so a flow-insensitive interprocedural points-to gives
     precise per-object disambiguation;
   - affine offset analysis: a gep chain's offset relative to its root
     is tracked as the residue class [c + g*Z] (g = 0 means exactly c);
     two accesses to the same object are independent when their residue
     classes are disjoint.

   Everything degrades conservatively: an address the lattice cannot
   express joins to [0 + 1*Z] (any offset), an operand whose object is
   unknown joins to Unknown, and [independent] answers false whenever
   either side is imprecise.

   On top of the oracle sits a *virtual* banking plan: a bijection
   [addr <-> (bank, local)] computed from the module and its layout.  No
   IR or layout is mutated — consumers (scheduler chains, rtsim bus
   arbitration, RTL memory decode) apply the map themselves.  That keeps
   program semantics banking-invariant by construction and lets the
   bank count key only simulation-level caches. *)

open Ir

(* --- canonical memory objects ------------------------------------------- *)

type base = Bglobal of string | Balloca of string * int (* func, inst id *)

type baseset =
  | Known of base list (* may point to any of these objects *)
  | Unknown (* may point anywhere *)

let union_bases a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Known xs, Known ys -> Known (List.sort_uniq compare (xs @ ys))

(* --- affine residue classes --------------------------------------------- *)

(* The value set { aconst + agcd * k | k in Z }; agcd = 0 means exactly
   [aconst], agcd = 1 means any value.  This is the coarsest lattice
   that still separates strided accesses (a[N*i] vs a[N*i+1]). *)
type affine = { aconst : int32; agcd : int }

let aff_const c = { aconst = c; agcd = 0 }
let aff_top = { aconst = 0l; agcd = 1 }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

let aff_add a b =
  { aconst = Int32.add a.aconst b.aconst; agcd = gcd a.agcd b.agcd }

let aff_sub a b =
  { aconst = Int32.sub a.aconst b.aconst; agcd = gcd a.agcd b.agcd }

let aff_scale k a =
  if k = 0l then aff_const 0l
  else
    {
      aconst = Int32.mul a.aconst k;
      agcd = abs (a.agcd * Int32.to_int k) land max_int;
    }

(* Conservative union: the smallest residue class containing both. *)
let aff_union a b =
  let d = Int32.to_int (Int32.sub a.aconst b.aconst) in
  { aconst = a.aconst; agcd = gcd (gcd a.agcd b.agcd) d }

(* May the two residue classes share an element? *)
let aff_collide a b =
  let g = gcd a.agcd b.agcd in
  if g = 0 then a.aconst = b.aconst
  else Int32.to_int (Int32.sub a.aconst b.aconst) mod g = 0

(* --- the analysis ------------------------------------------------------- *)

type t = {
  m : modul;
  (* function name -> per-argument (points-to, offset vs object base) *)
  argpt : (string, (baseset * affine) array) Hashtbl.t;
}

(* Affine value of an operand used as an integer (gep index).  Walks the
   defining chain depth-limited, with a visiting set so phi cycles join
   to top instead of looping. *)
let affine_of (f : func) (o : operand) : affine =
  let visiting = Hashtbl.create 8 in
  let rec go depth o =
    if depth > 64 then aff_top
    else
      match o with
      | Cst c -> aff_const c
      | Argv _ | Glob _ -> aff_top
      | Reg r ->
          if Hashtbl.mem visiting r then aff_top
          else begin
            Hashtbl.add visiting r ();
            let a =
              match (inst f r).kind with
              | Binop (Add, x, y) -> aff_add (go (depth + 1) x) (go (depth + 1) y)
              | Binop (Sub, x, y) -> aff_sub (go (depth + 1) x) (go (depth + 1) y)
              | Binop (Mul, x, Cst k) | Binop (Mul, Cst k, x) ->
                  aff_scale k (go (depth + 1) x)
              | Binop (Shl, x, Cst k) when Int32.to_int k land 31 < 30 ->
                  aff_scale
                    (Int32.shift_left 1l (Int32.to_int k land 31))
                    (go (depth + 1) x)
              | Phi incoming ->
                  List.fold_left
                    (fun acc (_, v) -> aff_union acc (go (depth + 1) v))
                    (match incoming with
                    | (_, v) :: _ -> go (depth + 1) v
                    | [] -> aff_top)
                    (match incoming with _ :: rest -> rest | [] -> [])
              | Select (_, x, y) ->
                  aff_union (go (depth + 1) x) (go (depth + 1) y)
              | Gep (x, y) -> aff_add (go (depth + 1) x) (go (depth + 1) y)
              | _ -> aff_top
            in
            Hashtbl.remove visiting r;
            a
          end
  in
  go 0 o

(* Base objects and affine offset (relative to each object's base) of an
   address operand inside [f]. *)
let rec addr_info t (f : func) (o : operand) : baseset * affine =
  match o with
  | Glob g -> (Known [ Bglobal g ], aff_const 0l)
  | Cst _ -> (Known [], aff_top) (* never front-end-generated *)
  | Argv i -> (
      match Hashtbl.find_opt t.argpt f.name with
      | Some sets when i < Array.length sets -> sets.(i)
      | _ -> (Unknown, aff_top))
  | Reg r -> (
      match (inst f r).kind with
      | Alloca _ -> (Known [ Balloca (f.name, r) ], aff_const 0l)
      | Gep (b, idx) ->
          let bs, off = addr_info t f b in
          (bs, aff_add off (affine_of f idx))
      | _ -> (Unknown, aff_top))

(* Fixpoint over call sites: each argument's (points-to, offset) is the
   join over every call site of the actual's address info.  Widening is
   built into the lattice (baseset union, affine union), and both are
   finite-height for a fixed module, so this terminates. *)
let build (m : modul) : t =
  let t = { m; argpt = Hashtbl.create 16 } in
  List.iter
    (fun f ->
      Hashtbl.replace t.argpt f.name
        (Array.make f.nparams (Known [], aff_const 0l)))
    m.funcs;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        iter_insts f (fun i ->
            match i.kind with
            | Call (callee, args) -> (
                match Hashtbl.find_opt t.argpt callee with
                | None -> ()
                | Some sets ->
                    Array.iteri
                      (fun k a ->
                        if k < Array.length sets then begin
                          let bs, off = addr_info t f a in
                          let obs, ooff = sets.(k) in
                          let nbs = union_bases obs bs in
                          let noff =
                            (* first contribution replaces the empty
                               seed exactly; later ones join *)
                            if obs = Known [] then off else aff_union ooff off
                          in
                          if (nbs, noff) <> sets.(k) then begin
                            sets.(k) <- (nbs, noff);
                            changed := true
                          end
                        end)
                      args
                | exception _ -> ())
            | _ -> ()))
      m.funcs
  done;
  t

(* --- the independence oracle -------------------------------------------- *)

let address_of_access (i : inst) : operand option =
  match i.kind with Load a | Store (a, _) -> Some a | _ -> None

(* May accesses [ia] (in [fa]) and [ib] (in [fb]) touch the same word?
   Answers false only on proof: disjoint object sets, or a shared object
   with provably disjoint residue classes. *)
let may_same_address t (fa : func) (ia : inst) (fb : func) (ib : inst) : bool =
  match (address_of_access ia, address_of_access ib) with
  | Some a, Some b -> (
      let ba, offa = addr_info t fa a in
      let bb, offb = addr_info t fb b in
      match (ba, bb) with
      | Unknown, _ | _, Unknown -> true
      | Known xs, Known ys ->
          List.exists (fun x -> List.mem x ys) xs && aff_collide offa offb)
  | _ -> false

let independent t fa ia fb ib = not (may_same_address t fa ia fb ib)

(* --- the banking plan --------------------------------------------------- *)

type policy = Pblock | Pcyclic

type region = {
  r_base : int; (* first word of the region *)
  r_words : int;
  r_policy : policy;
  r_bank : int; (* bank for Pblock; ignored for Pcyclic *)
  r_local : int array; (* per-bank local base of the region's words *)
}

type plan = {
  pn : int;
  pt : t;
  playout : Layout.t;
  regions : region list;
  bank_of_word : int array; (* indexed by word address, [0, words_used) *)
  local_of_word : int array;
  bank_words : int array; (* in-image words per bank (RTL memory sizing) *)
  tail_local : int array; (* per-bank local base for >= words_used *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Object table in layout order: (base, address, size, accesses).
   Accesses record every affine offset any load/store may apply to the
   object; objects only reached through Unknown addresses get no list
   entries (those instructions take the all-banks path regardless). *)
let objects_of t (layout : Layout.t) =
  let accesses : (base, affine list ref) Hashtbl.t = Hashtbl.create 64 in
  let touch b off =
    let l =
      match Hashtbl.find_opt accesses b with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add accesses b l;
          l
    in
    l := off :: !l
  in
  List.iter
    (fun f ->
      iter_insts f (fun i ->
          match address_of_access i with
          | None -> ()
          | Some a -> (
              match addr_info t f a with
              | Known bs, off -> List.iter (fun b -> touch b off) bs
              | Unknown, _ -> ())))
    t.m.funcs;
  let objs = ref [] in
  List.iter
    (fun (g : global) ->
      let addr = Int32.to_int (Layout.global_address layout g.gname) in
      objs := (Bglobal g.gname, addr, g.size) :: !objs)
    t.m.globals;
  List.iter
    (fun f ->
      iter_insts f (fun i ->
          match i.kind with
          | Alloca n when i.block >= 0 ->
              let addr =
                Int32.to_int (Layout.alloca_address layout f.name i.id)
              in
              objs := (Balloca (f.name, i.id), addr, n) :: !objs
          | _ -> ()))
    t.m.funcs;
  let objs = List.sort (fun (_, a, _) (_, b, _) -> compare a b) !objs in
  List.map
    (fun (b, addr, size) ->
      let accs = match Hashtbl.find_opt accesses b with
        | Some l -> !l
        | None -> []
      in
      (b, addr, size, accs))
    objs

let plan (t : t) (layout : Layout.t) ~(banks : int) : plan =
  let n = max 1 banks in
  let w = layout.words_used in
  let objs = objects_of t layout in
  (* Per-object policy.  Cyclic pays off when the object's accesses are
     all strided in multiples of N with at least two distinct residues
     (the unrolled a[N*i+k] pattern): every access then has a static
     bank and same-iteration accesses spread across banks.  Anything
     else blocks whole into one bank, chosen greedily to balance the
     static access weight across banks. *)
  let cyclic_ok size accs =
    n > 1 && is_pow2 n && size >= n && accs <> []
    && List.for_all (fun a -> a.agcd mod n = 0) accs
    &&
    let residue a = (Int32.to_int a.aconst mod n + n) mod n in
    List.length (List.sort_uniq compare (List.map residue accs)) > 1
  in
  let weight accs = 1 + List.length accs in
  let load = Array.make n 0 in
  (* Greedy block assignment in decreasing weight order so the heaviest
     objects spread first; ties and the final region list stay in layout
     order for deterministic output. *)
  let decisions : (base, policy * int) Hashtbl.t = Hashtbl.create 64 in
  let by_weight =
    List.stable_sort
      (fun (_, _, _, a) (_, _, _, b) -> compare (weight b) (weight a))
      objs
  in
  List.iter
    (fun (b, _, size, accs) ->
      if cyclic_ok size accs then begin
        Hashtbl.replace decisions b (Pcyclic, 0);
        let per = weight accs / n in
        for k = 0 to n - 1 do
          load.(k) <- load.(k) + per
        done
      end
      else begin
        let best = ref 0 in
        for k = 1 to n - 1 do
          if load.(k) < load.(!best) then best := k
        done;
        Hashtbl.replace decisions b (Pblock, !best);
        load.(!best) <- load.(!best) + weight accs
      end)
    by_weight;
  (* Regions in layout order: the reserved low words, one region per
     object (adjacent same-bank block regions merged), and any slack
     between/after objects blocked into bank 0. *)
  let cnt = Array.make n 0 in
  let mk_block bank base words =
    let r_local = Array.make n 0 in
    r_local.(bank) <- cnt.(bank);
    cnt.(bank) <- cnt.(bank) + words;
    { r_base = base; r_words = words; r_policy = Pblock; r_bank = bank; r_local }
  in
  let mk_cyclic base words =
    let r_local = Array.make n 0 in
    for k = 0 to n - 1 do
      r_local.(k) <- cnt.(k);
      cnt.(k) <- cnt.(k) + ((words + n - 1 - k) / n)
    done;
    { r_base = base; r_words = words; r_policy = Pcyclic; r_bank = 0; r_local }
  in
  let regions = ref [] in
  let push r = if r.r_words > 0 then regions := r :: !regions in
  let pos = ref 0 in
  let advance_to base =
    if base > !pos then push (mk_block 0 !pos (base - !pos));
    pos := max !pos base
  in
  advance_to (min Layout.base_addr w);
  List.iter
    (fun (b, addr, size, _) ->
      if size > 0 && addr >= !pos then begin
        advance_to addr;
        (match Hashtbl.find_opt decisions b with
        | Some (Pcyclic, _) -> push (mk_cyclic addr size)
        | Some (Pblock, bank) -> push (mk_block bank addr size)
        | None -> push (mk_block 0 addr size));
        pos := addr + size
      end)
    objs;
  advance_to w;
  (* Merge adjacent block regions with the same bank (cheaper decode). *)
  let regions =
    List.fold_left
      (fun acc r ->
        match acc with
        | prev :: rest
          when prev.r_policy = Pblock && r.r_policy = Pblock
               && prev.r_bank = r.r_bank
               && prev.r_base + prev.r_words = r.r_base ->
            { prev with r_words = prev.r_words + r.r_words } :: rest
        | _ -> r :: acc)
      []
      (List.rev !regions)
  in
  let regions = List.rev regions in
  let bank_of_word = Array.make w 0 in
  let local_of_word = Array.make w 0 in
  List.iter
    (fun r ->
      for x = 0 to r.r_words - 1 do
        match r.r_policy with
        | Pblock ->
            bank_of_word.(r.r_base + x) <- r.r_bank;
            local_of_word.(r.r_base + x) <- r.r_local.(r.r_bank) + x
        | Pcyclic ->
            let b = x mod n in
            bank_of_word.(r.r_base + x) <- b;
            local_of_word.(r.r_base + x) <- r.r_local.(b) + (x / n)
      done)
    regions;
  {
    pn = n;
    pt = t;
    playout = layout;
    regions;
    bank_of_word;
    local_of_word;
    bank_words = Array.copy cnt;
    tail_local = Array.copy cnt;
  }

(* Total on the whole address space: in-image words through the region
   map, anything beyond cyclically.  [bank_of_addr]/[local_of_addr] form
   a bijection addr <-> (bank, local): per bank, in-image locals occupy
   [0, bank_words) and tail locals continue strictly increasing above. *)
let bank_of_addr p (a : int32) : int =
  let x = Int32.to_int a in
  if x >= 0 && x < Array.length p.bank_of_word then p.bank_of_word.(x)
  else if p.pn = 1 then 0
  else ((x mod p.pn) + p.pn) mod p.pn

let local_of_addr p (a : int32) : int =
  let x = Int32.to_int a in
  if x >= 0 && x < Array.length p.local_of_word then p.local_of_word.(x)
  else
    let w = Array.length p.local_of_word in
    let b = bank_of_addr p a in
    p.tail_local.(b) + ((x - w) / p.pn)

(* Static bank of an access: Some b iff every object the address may
   point to, combined with the access's affine offset, lands in bank [b]
   no matter the dynamic index.  None takes the all-banks conservative
   path in every consumer. *)
let region_of_base p (b : base) : region option =
  let addr =
    match b with
    | Bglobal g -> (
        match Layout.global_address p.playout g with
        | a -> Some (Int32.to_int a)
        | exception _ -> None)
    | Balloca (f, id) -> (
        match Layout.alloca_address p.playout f id with
        | a -> Some (Int32.to_int a)
        | exception _ -> None)
  in
  match addr with
  | None -> None
  | Some a ->
      List.find_opt
        (fun r -> a >= r.r_base && a < r.r_base + r.r_words)
        p.regions

let bank_of_inst p (f : func) (i : inst) : int option =
  if p.pn = 1 then Some 0
  else
    match address_of_access i with
    | None -> None
    | Some a -> (
        let bs, off = addr_info p.pt f a in
        match bs with
        | Unknown -> None
        | Known [] ->
            if off.agcd = 0 then Some (bank_of_addr p off.aconst) else None
        | Known bases ->
            let bank_of_base b =
              match region_of_base p b with
              | None -> None
              | Some r -> (
                  match r.r_policy with
                  | Pblock -> Some r.r_bank
                  | Pcyclic ->
                      if off.agcd mod p.pn = 0 then
                        Some
                          (((Int32.to_int off.aconst mod p.pn) + p.pn) mod p.pn)
                      else None)
            in
            List.fold_left
              (fun acc b ->
                match (acc, bank_of_base b) with
                | Some x, Some y when x = y -> Some x
                | _ -> None)
              (bank_of_base (List.hd bases))
              (List.tl bases))

(* Per-function static bank table, indexed by instruction id — the form
   every consumer (scheduler, rtsim, RTL emitters) actually wants. *)
let bank_table p (f : func) : int option array =
  let tbl = Array.make (Vec.length f.insts) None in
  iter_insts f (fun i ->
      match i.kind with
      | Load _ | Store _ -> tbl.(i.id) <- bank_of_inst p f i
      | _ -> ());
  tbl
