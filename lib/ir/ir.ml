(* Twill's SSA intermediate representation.

   Mirrors the LLVM 2.9 subset the thesis works on: 32-bit integer values
   only (the thesis excludes the 64-bit CHStone kernels), a unified
   word-addressed memory space (the thesis's globals-to-arguments pass plus
   write-update coherency give every thread the same flat view), explicit
   phi nodes, and — after DSWP runs — the [Produce]/[Consume] queue
   instructions and semaphore operations of the Twill runtime. *)

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type operand =
  | Cst of int32
  | Reg of int      (* result of instruction [id] in the enclosing function *)
  | Argv of int     (* function argument index *)
  | Glob of string  (* address of a module global *)

type kind =
  | Binop of binop * operand * operand
  | Icmp of icmp * operand * operand
  | Select of operand * operand * operand
  | Alloca of int                  (* size in 32-bit words; address result *)
  | Gep of operand * operand       (* base address + word index *)
  | Load of operand
  | Store of operand * operand     (* address, value *)
  | Call of string * operand array
  | Phi of (int * operand) list    (* (predecessor block id, incoming) *)
  | Print of operand               (* host I/O builtin, used by self-checks *)
  (* Twill runtime operations, inserted by the DSWP code generator. *)
  | Produce of int * operand       (* queue id, value *)
  | Consume of int                 (* queue id; result is dequeued value *)
  | Sem_give of int * int          (* semaphore id, count *)
  | Sem_take of int * int
  | Dead                           (* tombstone left by transforms *)

type term =
  | Br of int
  | Cond_br of operand * int * int (* condition, then-block, else-block *)
  | Ret of operand option

type inst = {
  id : int;
  mutable kind : kind;
  mutable block : int;             (* owning block id, -1 if detached *)
}

type block = {
  bid : int;
  mutable insts : int list;        (* instruction ids, program order *)
  mutable term : term;
  mutable preds : int list;        (* maintained by [recompute_cfg] *)
}

type func = {
  name : string;
  mutable nparams : int; (* grown by the globals-to-arguments pass *)
  insts : inst Vec.t;
  blocks : block Vec.t;
  mutable entry : int;
}

type global = {
  gname : string;
  size : int;                      (* words *)
  init : int32 array;              (* length <= size; rest zero *)
}

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
}

let find_func m name =
  match List.find_opt (fun f -> f.name = name) m.funcs with
  | Some f -> f
  | None -> failwith ("Ir.find_func: no function " ^ name)

let dummy_inst = { id = -1; kind = Dead; block = -1 }
let dummy_block = { bid = -1; insts = []; term = Ret None; preds = [] }

let create_func ~name ~nparams =
  {
    name;
    nparams;
    insts = Vec.create ~dummy:dummy_inst;
    blocks = Vec.create ~dummy:dummy_block;
    entry = 0;
  }

let add_block f =
  let bid = Vec.length f.blocks in
  let b = { bid; insts = []; term = Ret None; preds = [] } in
  ignore (Vec.push f.blocks b);
  b

let block f bid = Vec.get f.blocks bid
let inst f id = Vec.get f.insts id

(* Creates a detached instruction; the caller appends it to a block. *)
let new_inst f kind =
  let id = Vec.length f.insts in
  let i = { id; kind; block = -1 } in
  ignore (Vec.push f.insts i);
  i

let append_inst f bid kind =
  let i = new_inst f kind in
  let b = block f bid in
  b.insts <- b.insts @ [ i.id ];
  i.block <- bid;
  i.id

let succs_of_term = function
  | Br b -> [ b ]
  | Cond_br (_, b1, b2) -> if b1 = b2 then [ b1 ] else [ b1; b2 ]
  | Ret _ -> []

let succs f bid = succs_of_term (block f bid).term

let recompute_cfg f =
  Vec.iter (fun b -> b.preds <- []) f.blocks;
  Vec.iter
    (fun b ->
      List.iter
        (fun s ->
          let sb = block f s in
          if not (List.mem b.bid sb.preds) then sb.preds <- sb.preds @ [ b.bid ])
        (succs_of_term b.term))
    f.blocks

(* Operands read by an instruction, in evaluation order. *)
let operands_of_kind = function
  | Binop (_, a, b) | Icmp (_, a, b) | Gep (a, b) | Store (a, b) -> [ a; b ]
  | Select (a, b, c) -> [ a; b; c ]
  | Load a | Print a | Produce (_, a) -> [ a ]
  | Call (_, args) -> Array.to_list args
  | Phi incoming -> List.map snd incoming
  | Alloca _ | Consume _ | Sem_give _ | Sem_take _ | Dead -> []

let operands i = operands_of_kind i.kind

let map_operands_kind g = function
  | Binop (op, a, b) -> Binop (op, g a, g b)
  | Icmp (op, a, b) -> Icmp (op, g a, g b)
  | Select (a, b, c) -> Select (g a, g b, g c)
  | Gep (a, b) -> Gep (g a, g b)
  | Load a -> Load (g a)
  | Store (a, b) -> Store (g a, g b)
  | Call (f, args) -> Call (f, Array.map g args)
  | Phi incoming -> Phi (List.map (fun (p, v) -> (p, g v)) incoming)
  | Print a -> Print (g a)
  | Produce (q, a) -> Produce (q, g a)
  | (Alloca _ | Consume _ | Sem_give _ | Sem_take _ | Dead) as k -> k

(* Deep copy: fresh [inst]/[block] records and fresh operand containers, so
   transforms on the copy (or the original) never alias.  Used by the DSWP
   driver to keep extraction from mutating the caller's module — a
   prerequisite for evaluating independent scenarios in parallel. *)
let copy_func (f : func) : func =
  let copy_inst (i : inst) : inst =
    { id = i.id; kind = map_operands_kind (fun o -> o) i.kind; block = i.block }
  and copy_block (b : block) : block =
    { bid = b.bid; insts = b.insts; term = b.term; preds = b.preds }
  in
  {
    name = f.name;
    nparams = f.nparams;
    insts = Vec.of_list ~dummy:dummy_inst (List.map copy_inst (Vec.to_list f.insts));
    blocks =
      Vec.of_list ~dummy:dummy_block (List.map copy_block (Vec.to_list f.blocks));
    entry = f.entry;
  }

(* Does the instruction define an SSA value usable as [Reg id]? *)
let has_result = function
  | Binop _ | Icmp _ | Select _ | Alloca _ | Gep _ | Load _ | Phi _ | Consume _
    ->
      true
  | Call (_, _) -> true (* void calls simply have no uses *)
  | Store _ | Print _ | Produce _ | Sem_give _ | Sem_take _ | Dead -> false

let is_phi i = match i.kind with Phi _ -> true | _ -> false

let has_side_effect = function
  | Store _ | Call _ | Print _ | Produce _ | Consume _ | Sem_give _
  | Sem_take _ ->
      true
  | Alloca _ -> true (* address identity matters *)
  | Binop ((Sdiv | Udiv | Srem | Urem), _, _) -> false
  (* division by zero traps in the interpreter, but mini-C programs are
     required not to divide by zero, so DCE may drop dead divisions *)
  | Binop _ | Icmp _ | Select _ | Gep _ | Load _ | Phi _ | Dead -> false

let iter_insts f g =
  Vec.iter (fun (b : block) -> List.iter (fun id -> g (inst f id)) b.insts) f.blocks

let fold_insts f g acc =
  let acc = ref acc in
  iter_insts f (fun i -> acc := g !acc i);
  !acc

let num_live_insts f = fold_insts f (fun n _ -> n + 1) 0

(* Replaces every use of [Reg old_id] with [by] across the function. *)
let replace_all_uses f ~old_id ~by =
  let g o = match o with Reg r when r = old_id -> by | _ -> o in
  Vec.iter
    (fun i -> if i.kind <> Dead then i.kind <- map_operands_kind g i.kind)
    f.insts;
  Vec.iter
    (fun b ->
      match b.term with
      | Cond_br (c, b1, b2) -> b.term <- Cond_br (g c, b1, b2)
      | Ret (Some v) -> b.term <- Ret (Some (g v))
      | Br _ | Ret None -> ())
    f.blocks

let remove_inst f id =
  let i = inst f id in
  if i.block >= 0 then begin
    let b = block f i.block in
    b.insts <- List.filter (fun x -> x <> id) b.insts
  end;
  i.block <- -1;
  i.kind <- Dead

(* Rewrites phi incoming-block references when an edge is redirected. *)
let rewrite_phi_pred f ~bid ~old_pred ~new_pred =
  List.iter
    (fun id ->
      let i = inst f id in
      match i.kind with
      | Phi incoming ->
          i.kind <-
            Phi
              (List.map
                 (fun (p, v) -> if p = old_pred then (new_pred, v) else (p, v))
                 incoming)
      | _ -> ())
    (block f bid).insts

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"
