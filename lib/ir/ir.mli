(** Twill's SSA intermediate representation.

    Mirrors the LLVM 2.9 subset the thesis works on: 32-bit integer
    values only (the thesis excludes the 64-bit CHStone kernels), a
    unified word-addressed memory space, explicit phi nodes, and — once
    DSWP has run — the [Produce]/[Consume] queue instructions and
    semaphore operations of the Twill runtime (§4.2-4.3).

    Structure: a {!modul} holds globals and functions; a {!func} owns
    growable vectors of {!block}s and {!inst}s; blocks reference
    instructions by id and carry their terminator separately, so every
    block is terminated by construction. *)

(** Binary operations; [Sdiv]/[Srem] truncate like C, [Udiv]/[Urem] are
    unsigned, shifts mask their count to 5 bits. *)
type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

(** Comparison predicates (signed and unsigned orderings). *)
type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

(** Instruction operands. *)
type operand =
  | Cst of int32
  | Reg of int  (** result of the instruction with that id *)
  | Argv of int  (** function argument *)
  | Glob of string  (** address of a module global *)

type kind =
  | Binop of binop * operand * operand
  | Icmp of icmp * operand * operand
  | Select of operand * operand * operand
  | Alloca of int  (** size in 32-bit words; the result is its address *)
  | Gep of operand * operand  (** base address + word index *)
  | Load of operand
  | Store of operand * operand  (** address, value *)
  | Call of string * operand array
  | Phi of (int * operand) list  (** (predecessor block id, incoming) *)
  | Print of operand  (** host I/O builtin, the observable trace *)
  | Produce of int * operand  (** queue id, value (Twill runtime) *)
  | Consume of int  (** queue id; the result is the dequeued value *)
  | Sem_give of int * int  (** semaphore id, count *)
  | Sem_take of int * int
  | Dead  (** tombstone left by transforms *)

type term =
  | Br of int
  | Cond_br of operand * int * int
  | Ret of operand option

type inst = { id : int; mutable kind : kind; mutable block : int }

type block = {
  bid : int;
  mutable insts : int list;  (** instruction ids, program order *)
  mutable term : term;
  mutable preds : int list;  (** maintained by {!recompute_cfg} *)
}

type func = {
  name : string;
  mutable nparams : int;  (** grown by the globals-to-arguments pass *)
  insts : inst Vec.t;
  blocks : block Vec.t;
  mutable entry : int;
}

type global = { gname : string; size : int; init : int32 array }
type modul = { mutable funcs : func list; mutable globals : global list }

val find_func : modul -> string -> func
(** @raise Failure on unknown names. *)

val dummy_inst : inst
val dummy_block : block

val create_func : name:string -> nparams:int -> func
val add_block : func -> block
val block : func -> int -> block
val inst : func -> int -> inst

val new_inst : func -> kind -> inst
(** Creates a detached instruction; the caller places it in a block. *)

val append_inst : func -> int -> kind -> int
(** Appends a new instruction to a block; returns its id. *)

val succs_of_term : term -> int list
val succs : func -> int -> int list
val recompute_cfg : func -> unit

val operands_of_kind : kind -> operand list
val operands : inst -> operand list
val map_operands_kind : (operand -> operand) -> kind -> kind

val copy_func : func -> func
(** Deep copy: fresh [inst]/[block] records and fresh operand containers,
    so transforms on the copy never affect the original (and vice versa).
    Lets the DSWP driver keep extraction from mutating its input module —
    a prerequisite for evaluating independent scenarios in parallel. *)

val has_result : kind -> bool
(** Does the instruction define an SSA value usable as [Reg id]? *)

val is_phi : inst -> bool
val has_side_effect : kind -> bool

val iter_insts : func -> (inst -> unit) -> unit
(** Iterates placed instructions in block/program order. *)

val fold_insts : func -> ('a -> inst -> 'a) -> 'a -> 'a
val num_live_insts : func -> int

val replace_all_uses : func -> old_id:int -> by:operand -> unit
val remove_inst : func -> int -> unit
val rewrite_phi_pred : func -> bid:int -> old_pred:int -> new_pred:int -> unit

val binop_name : binop -> string
val icmp_name : icmp -> string
