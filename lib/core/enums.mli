(** One authoritative table per user-facing enum spelling.

    Derived from each type's canonical [*_name] printer, shared by the
    cmdliner arguments (bin/twillc.ml), the DSE grid parser and the
    twilld request decoders so a spelling exists exactly once.  Every
    parser rejects unknown values with the full valid list in the
    message. *)

module Schedule = Twill_hls.Schedule
module Sim = Twill_rtsim.Sim
module Vsim = Twill_vsim.Vsim

val backends : (string * Schedule.backend) list
val backend_of_string : string -> (Schedule.backend, string) result

val sim_engines : (string * Sim.engine) list
val sim_engine_of_string : string -> (Sim.engine, string) result

val vsim_engines : (string * Vsim.engine) list
val vsim_engine_of_string : string -> (Vsim.engine, string) result
