(** Deterministic domain-parallelism for independent work items.

    All combinators share one process-wide slot budget of
    [Domain.recommended_domain_count () - 1] worker domains; when no slot
    is free the work runs inline on the caller, so nesting (a {!pair}
    inside a {!map} inside the benchmark harness) can never oversubscribe
    the machine.  Results keep the input order and exceptions re-raise on
    the caller, making a parallel run observationally identical to the
    sequential one as long as the thunks are independent. *)

val available : unit -> int
(** Worker-domain slots currently free (informational). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map].  The first item always runs on
    the calling domain.  If several items raise, the lowest-index
    exception wins. *)

val pair : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Runs both thunks, the second on a worker domain when a slot is free.
    Both always run to completion before any exception re-raises. *)

type pool
(** A persistent worker pool for long-lived servers: domains are spawned
    once (against the same process-wide slot budget, so a pool plus
    nested {!map}/{!pair} calls cannot oversubscribe) and kept alive
    across jobs, which preserves per-domain state — the driver's
    [Domain.DLS]-keyed preparation memos — between requests. *)

val pool : ?workers:int -> unit -> pool
(** Spawns up to [workers] (default: the full remaining slot budget)
    worker domains.  Fewer — possibly zero — are spawned when the budget
    is short; the pool still works, see {!pool_map}. *)

val pool_workers : pool -> int
(** Worker domains actually spawned (informational). *)

val pool_map : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over the pool.  The calling thread
    runs the first item inline and then helps drain the job queue, so a
    zero-worker pool degrades to a sequential map rather than blocking.
    Safe to call from several threads at once — jobs interleave on the
    shared queue.  If several items raise, the lowest-index exception
    wins. *)

val pool_shutdown : pool -> unit
(** Signals the workers to exit, joins them and releases their slots.
    The pool must not be used afterwards. *)
