(** Deterministic domain-parallelism for independent work items.

    All combinators share one process-wide slot budget of
    [Domain.recommended_domain_count () - 1] worker domains; when no slot
    is free the work runs inline on the caller, so nesting (a {!pair}
    inside a {!map} inside the benchmark harness) can never oversubscribe
    the machine.  Results keep the input order and exceptions re-raise on
    the caller, making a parallel run observationally identical to the
    sequential one as long as the thunks are independent. *)

val available : unit -> int
(** Worker-domain slots currently free (informational). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map].  The first item always runs on
    the calling domain.  If several items raise, the lowest-index
    exception wins. *)

val pair : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Runs both thunks, the second on a worker domain when a slot is free.
    Both always run to completion before any exception re-raises. *)
