(* Twill — the end-to-end compiler + runtime driver (thesis Fig. 3.1 and
   Fig. 5.1): mini-C source -> IR -> standard optimisation pipeline ->
   DSWP thread extraction -> HW/SW split -> LegUp-substitute scheduling ->
   cycle-accurate simulation, plus the two baselines the thesis evaluates
   against (pure software on the Microblaze model, pure hardware through
   the LegUp-substitute flow). *)

module Ir = Twill_ir.Ir
module Interp = Twill_ir.Interp
module Minic = Twill_minic.Minic
module Pipeline = Twill_passes.Pipeline
module Partition = Twill_dswp.Partition
module Threadgen = Twill_dswp.Threadgen
module Dswp = Twill_dswp.Dswp
module Parexec = Twill_dswp.Parexec
module Schedule = Twill_hls.Schedule
module Area = Twill_hls.Area
module Power = Twill_hls.Power
module Sim = Twill_rtsim.Sim
module Comm = Twill_comm.Comm
module Vruntime = Twill_vgen.Vruntime
module Vcheck = Twill_vgen.Vcheck
module Vparse = Twill_vsim.Vparse
module Vsim = Twill_vsim.Vsim
module Cosim = Twill_vsim.Cosim
module Par = Par
module Enums = Enums

type options = {
  partition : Partition.config;
  queue_depth : int;
  queue_depth_override : int option;
  queue_latency : int;
  inline_aggressive : bool;
  inline_threshold : int;
  unroll : bool;
  resources : Schedule.resources;
  modulo : bool;
  bus_contention : bool;
  fuel : int;
  sim_engine : Sim.engine;
  backend : Schedule.backend;  (* RTL lowering for hardware partitions *)
  pipeline_break : string option;
  comm : Comm.config;  (* communication-pattern optimizer passes *)
  mem_banks : int;  (* shared-memory banks (Memdep.plan); 1 = unbanked *)
  check_memdep : bool;  (* runtime alias checker (debug) *)
}

let default_options =
  {
    partition = Partition.default_config;
    queue_depth = 8; (* the thesis runs everything with 8x32 queues *)
    queue_depth_override = None;
    queue_latency = 2;
    inline_aggressive = false;
    inline_threshold = 60;
    unroll = false;
    resources = Schedule.default_resources;
    modulo = true;
    bus_contention = true;
    fuel = 300_000_000;
    sim_engine = Sim.Compiled;
    backend = Schedule.Fsm;
    pipeline_break = None;
    comm = Comm.none; (* seed behaviour: every pass off *)
    mem_banks = 1;
    check_memdep = false;
  }

(* --- compilation -------------------------------------------------------- *)

let pipeline_options (opts : options) : Pipeline.options =
  {
    Pipeline.default with
    inline_aggressive = opts.inline_aggressive;
    inline_threshold = opts.inline_threshold;
    unroll = opts.unroll;
    break_pass = opts.pipeline_break;
  }

(* mini-C source -> optimised IR module. *)
let compile ?(opts = default_options) (src : string) : Ir.modul =
  let m = Minic.compile src in
  Pipeline.run ~opts:(pipeline_options opts) m;
  m

(* One instrumented interpreter run collecting per-block execution counts
   of [main] — the partitioner's weights are profile-guided, like running
   the thesis's flow on top of LLVM's profiling infrastructure. *)
let profile_blocks ?(opts = default_options) (m : Ir.modul) : int array =
  let main = Ir.find_func m "main" in
  let counts = Array.make (Twill_ir.Vec.length main.Ir.blocks) 0 in
  let term_cost (f : Ir.func) (b : Ir.block) =
    if f == main then counts.(b.Ir.bid) <- counts.(b.Ir.bid) + 1;
    0
  in
  (try
     ignore
       (Interp.run ~fuel:opts.fuel ~cost:Interp.zero_cost ~term_cost
          ~charge_cycles:true m)
   with Interp.Out_of_fuel | Interp.Trap _ -> ());
  counts

let sim_config (opts : options) : Sim.config =
  {
    Sim.queue_latency = opts.queue_latency;
    queue_depth_override = opts.queue_depth_override;
    resources = opts.resources;
    modulo = opts.modulo;
    backend = opts.backend;
    bus_contention = opts.bus_contention;
    fuel = opts.fuel;
    engine = opts.sim_engine;
    mem_banks = opts.mem_banks;
    check_memdep = opts.check_memdep;
  }

let thread_specs (t : Dswp.threaded) : Sim.thread_spec array =
  Array.mapi
    (fun s name ->
      {
        Sim.tname = name;
        trole =
          (match t.Dswp.roles.(s) with
          | Partition.Sw -> Sim.Sw
          | Partition.Hw -> Sim.Hw);
        local_memory = false;
      })
    t.Dswp.stages

(* Optimised module -> extracted threads, with the communication-pattern
   optimizer ([opts.comm]) applied on the way out: condition-channel
   LICM happens inside extraction itself, and when the "size"/"burst"
   passes need a profile, a seed simulation of the unoptimized pipeline
   collects the per-channel occupancy/stall/burst counters first.
   [?profile] lets callers that extract the same module repeatedly
   (width auto-tuning, sweeps) reuse one instrumented run instead of
   re-profiling per extraction; [?prep] additionally reuses the
   partition-independent analyses. *)
let extract_comm ?(opts = default_options) ?profile ?prep (m : Ir.modul) :
    Dswp.threaded * Comm.report =
  let licm_conds = opts.comm.Comm.licm in
  let t =
    match prep with
    | Some _ ->
        Dswp.run ~config:opts.partition ~queue_depth:opts.queue_depth
          ~licm_conds ?prep m
    | None ->
        let profile =
          match profile with Some p -> p | None -> profile_blocks ~opts m
        in
        Dswp.run ~config:opts.partition ~queue_depth:opts.queue_depth
          ~licm_conds ~profile m
  in
  let qprofile =
    if Comm.needs_profile opts.comm then
      try
        let stats =
          Sim.simulate ~config:(sim_config opts) ~master:t.Dswp.master
            t.Dswp.modul ~threads:(thread_specs t) ~queues:t.Dswp.queues
            ~nsems:t.Dswp.nsems ()
        in
        Some stats.Sim.queue_profiles
      with Sim.Deadlock _ | Sim.Out_of_fuel _ ->
        (* the profile-guided passes degrade gracefully without a seed
           profile; behaviour bugs still surface in the real run *)
        None
    else None
  in
  let report = Comm.apply ~config:opts.comm ?profile:qprofile t in
  (t, report)

let extract ?opts ?profile ?prep (m : Ir.modul) : Dswp.threaded =
  fst (extract_comm ?opts ?profile ?prep m)

(* --- the three evaluation scenarios -------------------------------------- *)

type scenario = {
  cycles : int;
  ret : int32;
  prints : int32 list;
  area : Area.t; (* FPGA logic of the deployed design (excl. Microblaze) *)
  power_mw : float;
  executed : int;
}

type twill_result = {
  scenario : scenario;
  threaded : Dswp.threaded;
  hw_threads_area : Area.t; (* LegUp-translated thread logic only *)
  runtime_area : Area.t; (* queues, semaphores, buses, interfaces *)
  n_hw_threads : int;
  nqueues : int;
  nsems : int;
  stats : Sim.stats;
}

let schedules_for (opts : options) (m : Ir.modul) : (string * Schedule.t) list =
  List.map
    (fun (f : Ir.func) ->
      ( f.Ir.name,
        Schedule.cached ~res:opts.resources ~modulo:opts.modulo
          ~backend:opts.backend f ))
    m.Ir.funcs

(* Pure software: the whole program on the Microblaze. *)
let run_pure_sw ?(opts = default_options) (m : Ir.modul) : scenario =
  let stats =
    Sim.simulate ~config:(sim_config opts) m
      ~threads:[| { Sim.tname = "main"; trole = Sim.Sw; local_memory = false } |]
      ~queues:[||] ~nsems:0 ()
  in
  {
    cycles = stats.Sim.cycles;
    ret = stats.Sim.ret;
    prints = stats.Sim.prints;
    area = Area.zero; (* no fabric logic; the soft core itself reported separately *)
    power_mw =
      Power.power ~with_microblaze:true ~mb_activity:1.0 ~area:Area.microblaze
        ~logic_activity:0.0 ();
    executed = stats.Sim.executed;
  }

(* Pure hardware: the whole program through the LegUp-substitute flow.
   This baseline is the monolithic LegUp translation by definition, so it
   stays on the FSM backend whatever [opts.backend] selects for the
   hybrid's partitions. *)
let run_pure_hw ?(opts = default_options) (m : Ir.modul) : scenario =
  let opts = { opts with backend = Schedule.Fsm } in
  let stats =
    Sim.simulate ~config:(sim_config opts) m
      ~threads:[| { Sim.tname = "main"; trole = Sim.Hw; local_memory = true } |]
      ~queues:[||] ~nsems:0 ()
  in
  let area = Area.of_legup_module m ~schedules:(schedules_for opts m) in
  let busy = match stats.Sim.thread_busy with [| (_, b) |] -> b | _ -> 0 in
  let activity =
    if stats.Sim.cycles = 0 then 0.0
    else float_of_int busy /. float_of_int stats.Sim.cycles
  in
  {
    cycles = stats.Sim.cycles;
    ret = stats.Sim.ret;
    prints = stats.Sim.prints;
    area;
    power_mw =
      Power.power ~with_microblaze:false ~mb_activity:0.0 ~area
        ~logic_activity:activity ();
    executed = stats.Sim.executed;
  }

(* Callees reachable from a set of root functions. *)
let reachable_funcs (m : Ir.modul) (roots : string list) : string list =
  let seen = Hashtbl.create 16 in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      Ir.iter_insts (Ir.find_func m name) (fun i ->
          match i.Ir.kind with Ir.Call (n, _) -> go n | _ -> ())
    end
  in
  List.iter go roots;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* Simulation + area/power accounting for an already-extracted pipeline. *)
let run_twill_threaded ?(opts = default_options) (t : Dswp.threaded) :
    twill_result =
  let threads = thread_specs t in
  let stats =
    Sim.simulate ~config:(sim_config opts) ~master:t.Dswp.master t.Dswp.modul
      ~threads ~queues:t.Dswp.queues ~nsems:t.Dswp.nsems ()
  in
  (* area: HW thread logic = LegUp translation of the hardware stages and
     every callee reachable from them *)
  let hw_roots =
    Array.to_list t.Dswp.stages
    |> List.filteri (fun s _ -> t.Dswp.roles.(s) = Partition.Hw)
  in
  let hw_funcs = reachable_funcs t.Dswp.modul hw_roots in
  (* banked designs replay banked schedules and pay the extra ports /
     bank-select muxes in the area model *)
  let banking_of =
    if opts.mem_banks <= 1 then fun _ -> None
    else begin
      let plan =
        lazy
          (let md = Twill_ir.Memdep.build t.Dswp.modul in
           Twill_ir.Memdep.plan md
             (Twill_ir.Layout.build t.Dswp.modul)
             ~banks:opts.mem_banks)
      in
      fun (f : Ir.func) ->
        let tbl = Twill_ir.Memdep.bank_table (Lazy.force plan) f in
        Some
          {
            Schedule.nbanks = opts.mem_banks;
            bank_of_id =
              (fun id ->
                if id >= 0 && id < Array.length tbl then tbl.(id) else None);
          }
    end
  in
  let hw_threads_area =
    Area.sum
      (List.map
         (fun name ->
           let f = Ir.find_func t.Dswp.modul name in
           let s =
             Schedule.cached ~res:opts.resources ~modulo:opts.modulo
               ~backend:opts.backend ?banking:(banking_of f) f
           in
           match opts.backend with
           | Schedule.Fsm -> Area.of_schedule ~banks:opts.mem_banks f s
           | Schedule.Dataflow ->
               Area.of_elastic_schedule ~banks:opts.mem_banks f s)
         hw_funcs)
  in
  let runtime_area =
    Area.of_runtime
      ~queues:
        (Array.to_list t.Dswp.queues
        (* merged channels share the survivor's FIFO — no fabric of
           their own (the merge pass's area win) *)
        |> List.filter (fun (q : Threadgen.queue_info) ->
               q.Threadgen.merged_into = None)
        |> List.map (fun (q : Threadgen.queue_info) ->
               (q.Threadgen.width_bits, q.Threadgen.depth)))
      ~nsems:t.Dswp.nsems ~n_hw_threads:(List.length hw_roots)
  in
  let area = Area.add hw_threads_area runtime_area in
  (* activities *)
  let makespan = max 1 stats.Sim.cycles in
  let mb_activity =
    match stats.Sim.thread_busy with
    | [||] -> 0.0
    | arr -> float_of_int (snd arr.(t.Dswp.master)) /. float_of_int makespan
  in
  let hw_busy =
    Array.to_list stats.Sim.thread_busy
    |> List.filteri (fun s _ -> s <> t.Dswp.master)
    |> List.map snd
  in
  let logic_activity =
    match hw_busy with
    | [] -> 0.0
    | l ->
        List.fold_left ( + ) 0 l
        |> fun total ->
        float_of_int total /. float_of_int (makespan * List.length l)
  in
  {
    scenario =
      {
        cycles = stats.Sim.cycles;
        ret = stats.Sim.ret;
        prints = stats.Sim.prints;
        area;
        power_mw =
          Power.power ~with_microblaze:true ~mb_activity ~area
            ~logic_activity ();
        executed = stats.Sim.executed;
      };
    threaded = t;
    hw_threads_area;
    runtime_area;
    n_hw_threads = List.length hw_roots;
    nqueues = Array.length t.Dswp.queues;
    nsems = t.Dswp.nsems;
    stats;
  }

(* The Twill hybrid flow. *)
let run_twill ?(opts = default_options) ?profile ?prep (m : Ir.modul) :
    twill_result =
  run_twill_threaded ~opts (extract ~opts ?profile ?prep m)

(* --- communication-pattern report (twillc comm-report, twilld "comm") ----- *)

type comm_summary = {
  comm_rep : Comm.report;  (* what each enabled pass did *)
  comm_profile : Sim.queue_profile array;
      (* seed profile of the *unoptimized* extraction, indexed by qid —
         the evidence the passes acted on *)
  comm_queues : Threadgen.queue_info array;  (* post-optimization channels *)
  comm_base_cycles : int;  (* unoptimized pipeline *)
  comm_opt_cycles : int;  (* with [opts.comm] applied *)
}

(* Extracts [m] twice — once with every comm pass off (the baseline whose
   profile and cycle count anchor the report) and once under [opts.comm]
   — and simulates both.  One instrumented profiling run serves both
   extractions. *)
let comm_summarize ?(opts = default_options) (m : Ir.modul) : comm_summary =
  let profile = profile_blocks ~opts m in
  let base_opts = { opts with comm = Comm.none } in
  let tb = extract ~opts:base_opts ~profile m in
  let base = run_twill_threaded ~opts:base_opts tb in
  let t, rep = extract_comm ~opts ~profile m in
  let r = run_twill_threaded ~opts t in
  {
    comm_rep = rep;
    comm_profile = base.stats.Sim.queue_profiles;
    comm_queues = t.Dswp.queues;
    comm_base_cycles = base.scenario.cycles;
    comm_opt_cycles = r.scenario.cycles;
  }

(* RTL co-simulation of an extracted design against the rtsim reference. *)
let cosim ?(opts = default_options) ?engine ?vcd (t : Dswp.threaded) :
    Cosim.report =
  let design =
    Vparse.parse
      (Vruntime.emit_design ~backend:opts.backend ~mem_banks:opts.mem_banks t)
  in
  Cosim.run_threaded ~config:(sim_config opts) ?engine ?vcd ~design t

(* Three-way differential co-simulation: the rtsim reference against
   BOTH RTL lowerings of the same extraction.  Each backend's cosim
   checks its RTL against the rtsim replay of its own schedule flavour
   (return value + print trace); across the two RTL runs the per-stage
   call-port issue streams must additionally be identical — the two
   schedules time operations differently, but the order chains
   serialize every memory and queue operation, so both lowerings of
   one partition drive the same request sequence at the HWInterface. *)
type backends_report = {
  bk_fsm : Cosim.report;
  bk_dataflow : Cosim.report;
  bk_ops_match : bool;  (* per-stage call-port streams identical *)
  bk_agree : bool;  (* all three observers agree *)
}

let cosim_backends ?(opts = default_options) ?engine (t : Dswp.threaded) :
    backends_report =
  let run backend =
    let opts = { opts with backend } in
    let design =
      Vparse.parse
        (Vruntime.emit_design ~backend ~mem_banks:opts.mem_banks t)
    in
    Cosim.run_threaded ~config:(sim_config opts) ?engine ~trace:true ~design t
  in
  let bk_fsm = run Schedule.Fsm in
  let bk_dataflow = run Schedule.Dataflow in
  let bk_ops_match =
    if opts.mem_banks <= 1 then bk_fsm.Cosim.rtl_ops = bk_dataflow.Cosim.rtl_ops
    else begin
      (* Under banking the two schedules may legally interleave requests
         to DIFFERENT banks differently — each bank port is an
         independent ordering domain.  What must still agree per stage
         is every per-bank memory stream plus the non-memory (queue/
         semaphore/print) stream. *)
      let md = Twill_ir.Memdep.build t.Dswp.modul in
      let layout = Twill_ir.Layout.build t.Dswp.modul in
      let plan = Twill_ir.Memdep.plan md layout ~banks:opts.mem_banks in
      let project ops =
        let streams = Array.make (opts.mem_banks + 1) [] in
        List.iter
          (fun ((code, _, _, addr) as op) ->
            let k =
              if code = 0 || code = 1 then
                Twill_ir.Memdep.bank_of_addr plan (Int32.of_int addr)
              else opts.mem_banks
            in
            streams.(k) <- op :: streams.(k))
          ops;
        Array.map List.rev streams
      in
      Array.map project bk_fsm.Cosim.rtl_ops
      = Array.map project bk_dataflow.Cosim.rtl_ops
    end
  in
  let bk_agree =
    bk_fsm.Cosim.agree && bk_dataflow.Cosim.agree
    && bk_fsm.Cosim.rtl_ret = bk_dataflow.Cosim.rtl_ret
    && bk_fsm.Cosim.rtl_prints = bk_dataflow.Cosim.rtl_prints
    && bk_ops_match
  in
  { bk_fsm; bk_dataflow; bk_ops_match; bk_agree }

(* --- full report (one benchmark, all three scenarios) --------------------- *)

type report = {
  name : string;
  sw : scenario;
  hw : scenario;
  twill : twill_result;
  speedup_vs_sw : float; (* Twill vs pure software *)
  speedup_vs_hw : float; (* Twill vs pure hardware *)
  hw_speedup_vs_sw : float; (* pure hardware vs pure software *)
}

exception Self_check_failed of string

(* Like the thesis's iterated partitioning (§5.2: the DSWP algorithm is
   re-run with adjusted targets), the driver tries several pipeline widths
   and keeps the best-performing extraction. *)
let run_twill_auto ?(opts = default_options) ?(widths = [ 2; 3; 4; 5 ])
    (m : Ir.modul) : twill_result =
  (* one instrumented profiling run and one PDG/weights analysis serve
     every width; widths whose partitions coincide (common on serial
     kernels, where the partitioner cannot fill the requested stages)
     share one simulation.  The distinct extractions are independent over
     a module DSWP no longer mutates, so they evaluate on parallel
     domains when slots are free. *)
  let prep = Dswp.prepare ~profile:(profile_blocks ~opts m) m in
  let opts_of k =
    { opts with partition = { opts.partition with Partition.nstages = k } }
  in
  let keyed =
    List.map
      (fun k ->
        let t = extract ~opts:(opts_of k) ~prep m in
        let key =
          Digest.string
            (Marshal.to_string
               ( t.Dswp.partition.Partition.stage_of_node,
                 t.Dswp.partition.Partition.roles )
               [])
        in
        (key, k, t))
      widths
  in
  let distinct =
    List.fold_left
      (fun acc (key, k, t) ->
        if List.mem_assoc key acc then acc else (key, (k, t)) :: acc)
      [] keyed
    |> List.rev
  in
  let simmed =
    Par.map
      (fun (key, (k, t)) -> (key, run_twill_threaded ~opts:(opts_of k) t))
      distinct
  in
  let candidates = List.map (fun (key, _, _) -> List.assoc key simmed) keyed in
  match candidates with
  | [] -> run_twill ~opts ~prep m
  | first :: rest ->
      (* prefer deeper pipelines when performance is within 2% — ties go
         to the configuration that actually exploits TLP *)
      List.fold_left
        (fun best c ->
          let cb = float_of_int best.scenario.cycles in
          if float_of_int c.scenario.cycles < 0.98 *. cb then c
          else if
            c.scenario.cycles <= best.scenario.cycles
            && c.n_hw_threads > best.n_hw_threads
          then c
          else best)
        first rest

(* Compiles and evaluates [src] under all three flows, checking that all
   of them observe identical behaviour (return value and print trace). *)
let evaluate ?(opts = default_options) ?(auto_stages = true) ~(name : string)
    (src : string) : report =
  let m = compile ~opts src in
  (* the three flows only read [m]; the hybrid (which itself fans out over
     pipeline widths) overlaps with both baselines when domains are free *)
  let (sw, hw), tw =
    Par.pair
      (fun () ->
        Par.pair (fun () -> run_pure_sw ~opts m) (fun () -> run_pure_hw ~opts m))
      (fun () ->
        if auto_stages then run_twill_auto ~opts m else run_twill ~opts m)
  in
  if
    sw.ret <> hw.ret || sw.ret <> tw.scenario.ret || sw.prints <> hw.prints
    || sw.prints <> tw.scenario.prints
  then
    raise
      (Self_check_failed
         (Printf.sprintf "%s: scenarios disagree (sw=%ld hw=%ld twill=%ld)"
            name sw.ret hw.ret tw.scenario.ret));
  let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    name;
    sw;
    hw;
    twill = tw;
    speedup_vs_sw = fdiv sw.cycles tw.scenario.cycles;
    speedup_vs_hw = fdiv hw.cycles tw.scenario.cycles;
    hw_speedup_vs_sw = fdiv sw.cycles hw.cycles;
  }

(* --- unified per-stage observation (the fuzzing oracle's probes) --------- *)

(* Every layer of the stack that claims observational equivalence with
   the source program is one observation point: the typed-AST reference
   interpreter, both IR interpreter engines on the raw module, the
   module after each prefix of the pass pipeline, the partitioned
   cycle-accurate rtsim execution, and vsim RTL co-simulation under a
   chosen scheduling engine (the default fuzz set pits the compiled
   engine against its levelized oracle).  [observe] runs one point over
   one source
   string and reduces the run to the observables the thesis's
   correctness argument is about: return value + print trace. *)

type observation = { obs_ret : int32; obs_prints : int32 list }

(* The oracle observes one source string at every stage, scanning the
   pass prefixes in ascending order before reaching rtsim and the
   cosims.  Two one-entry per-domain memos keep that scan linear:

   - [opt_prep] holds the module after the first [odone] pipeline
     stages; observing prefix k >= odone applies only stages
     [odone, k) instead of re-compiling and re-running the whole
     prefix ([Pipeline.run_range] splits exactly like that).  Sound
     because passes are deterministic in-place transforms and
     [Interp.run] builds its decode context per call without mutating
     the module (interp.ml header).
   - [obs_prep] holds the optimised-and-extracted pipeline shared by
     the last three stages (rtsim, then one cosim per vsim engine).

   Per-domain because the fuzz campaign fans cases out over a [Par]
   pool; one entry because each case's stages are scanned
   consecutively within a domain. *)
type opt_prep = {
  osrc : string;
  oopts : Pipeline.options;
  mutable odone : int;  (* pipeline stages applied to [om] so far *)
  om : Ir.modul;
  mutable oruns : (Interp.engine * int * Interp.result) list;
      (* interpreter observations of [om] in its current state, keyed
         by (engine, fuel); flushed whenever a stage changes [om].
         Interpretation is deterministic, so when [run_range] reports
         that the new stages of a prefix were all no-ops, the previous
         prefix's observation is the current one. *)
}

let opt_prep_memo : opt_prep option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let opt_prep ~opts (k : int) (src : string) : opt_prep =
  let popts = pipeline_options opts in
  let memo = Domain.DLS.get opt_prep_memo in
  match !memo with
  | Some p when String.equal p.osrc src && p.oopts = popts && p.odone <= k ->
      if Pipeline.run_range ~opts:popts p.odone k p.om then p.oruns <- [];
      p.odone <- k;
      p
  | _ ->
      let m = Minic.compile src in
      Pipeline.run_prefix ~opts:popts k m;
      let p = { osrc = src; oopts = popts; odone = k; om = m; oruns = [] } in
      memo := Some p;
      p

let opt_interp ~opts (k : int) (engine : Interp.engine) (src : string) :
    Interp.result =
  let p = opt_prep ~opts k src in
  match
    List.find_opt (fun (e, fuel, _) -> e = engine && fuel = opts.fuel) p.oruns
  with
  | Some (_, _, r) -> r
  | None ->
      let r = Interp.run ~fuel:opts.fuel ~engine p.om in
      p.oruns <- (engine, opts.fuel, r) :: p.oruns;
      r

type obs_prep = {
  prep_src : string;
  prep_opts : options;
  prep_t : Dswp.threaded;
  prep_design : Vparse.design Lazy.t;
      (* emitted+parsed Verilog of [prep_t] under [prep_opts.backend];
         lazy because the rtsim stage populates the memo without
         needing it, shared because elaboration only reads it (one
         parse serves both engines) *)
  prep_design_df : Vparse.design Lazy.t;
      (* the same pipeline under the elastic dataflow lowering — the
         cross-backend observation point ([Obs_velastic]) *)
}

let obs_prep_memo : obs_prep option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let obs_prep ~opts (src : string) : obs_prep =
  let memo = Domain.DLS.get obs_prep_memo in
  match !memo with
  | Some p when String.equal p.prep_src src && p.prep_opts = opts -> p
  | _ ->
      (* extraction mutates the module in place, so once the prefix
         memo's module is promoted to the full pipeline and handed
         over, the prefix memo must stop serving it *)
      let m =
        let popts = pipeline_options opts in
        let omemo = Domain.DLS.get opt_prep_memo in
        match !omemo with
        | Some p when String.equal p.osrc src && p.oopts = popts ->
            ignore (Pipeline.run_range ~opts:popts p.odone Pipeline.nstages p.om);
            omemo := None;
            p.om
        | _ -> compile ~opts src
      in
      let t = extract ~opts m in
      let p =
        {
          prep_src = src;
          prep_opts = opts;
          prep_t = t;
          prep_design =
            lazy
              (Vparse.parse
                 (Vruntime.emit_design ~backend:opts.backend
                    ~mem_banks:opts.mem_banks t));
          prep_design_df =
            lazy
              (Vparse.parse
                 (Vruntime.emit_design ~backend:Schedule.Dataflow
                    ~mem_banks:opts.mem_banks t));
        }
      in
      memo := Some p;
      p

type obs_stage =
  | Obs_ast  (* typed-AST reference interpreter *)
  | Obs_ir of Interp.engine  (* raw (unoptimised) IR *)
  | Obs_opt of int * Interp.engine  (* after the first k pipeline stages *)
  | Obs_rtsim  (* partitioned cycle-accurate simulation *)
  | Obs_vsim of Vsim.engine  (* RTL co-simulation of the emitted design *)
  | Obs_velastic of Vsim.engine
    (* RTL co-simulation of the elastic dataflow lowering of the same
       pipeline (the cross-backend differential observation point) *)

type obs_outcome =
  | Obs_ok of observation
  | Obs_skip of string  (* ran out of budget; not a verdict *)
  | Obs_error of string  (* the stage failed outright *)

let engine_suffix = function Interp.Decoded -> "" | Interp.Tree -> "-tree"

let obs_stage_name = function
  | Obs_ast -> "ast"
  | Obs_ir e -> "ir" ^ engine_suffix e
  | Obs_opt (k, e) ->
      let pass =
        if k <= 0 then "none"
        else List.nth Pipeline.stage_names (min k Pipeline.nstages - 1)
      in
      Printf.sprintf "opt[%s]%s" pass (engine_suffix e)
  | Obs_rtsim -> "rtsim"
  | Obs_vsim e -> "vsim-" ^ Vsim.engine_name e
  | Obs_velastic e -> "vsim-df-" ^ Vsim.engine_name e

let obs_stages : obs_stage list =
  [ Obs_ast; Obs_ir Interp.Tree; Obs_ir Interp.Decoded ]
  @ List.init Pipeline.nstages (fun k -> Obs_opt (k + 1, Interp.Decoded))
  @ [ Obs_opt (Pipeline.nstages, Interp.Tree); Obs_rtsim;
      Obs_vsim Vsim.Compiled; Obs_vsim Vsim.Levelized;
      Obs_velastic Vsim.Compiled ]

let contains_substr ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let observe ?(opts = default_options) ~(stage : obs_stage) (src : string) :
    obs_outcome =
  try
    match stage with
    | Obs_ast ->
        let r = Minic.run_reference ~fuel:opts.fuel src in
        Obs_ok
          {
            obs_ret = r.Twill_minic.Ast_interp.ret;
            obs_prints = r.Twill_minic.Ast_interp.prints;
          }
    | Obs_ir engine ->
        let r = opt_interp ~opts 0 engine src in
        Obs_ok { obs_ret = r.Interp.ret; obs_prints = r.Interp.prints }
    | Obs_opt (k, engine) ->
        let r = opt_interp ~opts k engine src in
        Obs_ok { obs_ret = r.Interp.ret; obs_prints = r.Interp.prints }
    | Obs_rtsim ->
        let p = obs_prep ~opts src in
        let r = run_twill_threaded ~opts p.prep_t in
        Obs_ok { obs_ret = r.scenario.ret; obs_prints = r.scenario.prints }
    | Obs_vsim engine ->
        let p = obs_prep ~opts src in
        (* [~model:false]: the oracle compares every stage against the
           AST reference itself, and rtsim is its own observation point
           — re-running the reference inside the cosim would only
           duplicate work the chain already did. *)
        let r =
          Cosim.run_threaded ~config:(sim_config opts) ~engine ~model:false
            ~design:(Lazy.force p.prep_design) p.prep_t
        in
        Obs_ok { obs_ret = r.Cosim.rtl_ret; obs_prints = r.Cosim.rtl_prints }
    | Obs_velastic engine ->
        let p = obs_prep ~opts src in
        let r =
          Cosim.run_threaded
            ~config:(sim_config { opts with backend = Schedule.Dataflow })
            ~engine ~model:false
            ~design:(Lazy.force p.prep_design_df)
            p.prep_t
        in
        Obs_ok { obs_ret = r.Cosim.rtl_ret; obs_prints = r.Cosim.rtl_prints }
  with
  | Minic.Error msg -> Obs_error ("compile: " ^ msg)
  | Twill_minic.Ast_interp.Out_of_fuel | Interp.Out_of_fuel ->
      Obs_skip "out of fuel"
  | Sim.Out_of_fuel msg -> Obs_skip ("out of fuel: " ^ msg)
  | Twill_minic.Ast_interp.Trap msg | Interp.Trap msg ->
      Obs_error ("trap: " ^ msg)
  | Sim.Deadlock msg -> Obs_error ("deadlock: " ^ msg)
  | Cosim.Cosim_error msg ->
      if contains_substr ~sub:"out of fuel" msg then Obs_skip msg
      else Obs_error ("cosim: " ^ msg)
  | Twill_vsim.Vsim.Sim_error msg -> Obs_error ("vsim: " ^ msg)
  | Failure msg -> Obs_error ("failure: " ^ msg)
  | Invalid_argument msg -> Obs_error ("invalid: " ^ msg)
