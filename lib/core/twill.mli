(** Twill — the end-to-end hybrid-compilation driver.

    This is the library façade a downstream user programs against: compile
    mini-C to optimised IR, extract DSWP pipeline threads, and evaluate
    under the three flows of the thesis's Chapter 6 — pure software on the
    Microblaze model, pure hardware through the LegUp-substitute flow, and
    the Twill hybrid.  See {!module:Twill_chstone.Chstone} for the bundled
    benchmarks and [bench/main.ml] for the experiment harness. *)

(** Re-exported building blocks, so users need only this module. *)
module Ir = Twill_ir.Ir

module Interp = Twill_ir.Interp
module Minic = Twill_minic.Minic
module Pipeline = Twill_passes.Pipeline
module Partition = Twill_dswp.Partition
module Threadgen = Twill_dswp.Threadgen
module Dswp = Twill_dswp.Dswp
module Parexec = Twill_dswp.Parexec
module Schedule = Twill_hls.Schedule
module Area = Twill_hls.Area
module Power = Twill_hls.Power
module Sim = Twill_rtsim.Sim
module Comm = Twill_comm.Comm
module Vruntime = Twill_vgen.Vruntime
module Vcheck = Twill_vgen.Vcheck
module Vparse = Twill_vsim.Vparse
module Vsim = Twill_vsim.Vsim
module Cosim = Twill_vsim.Cosim

(** Deterministic domain-parallel evaluation helpers (shared slot budget). *)
module Par = Par
module Enums = Enums

(** Compilation and evaluation options; [default_options] matches the
    thesis's experimental setup (8-deep 32-bit queues, 2-cycle queue
    latency, one Microblaze, 100 MHz everywhere). *)
type options = {
  partition : Partition.config;  (** pipeline width and split target *)
  queue_depth : int;  (** slots per queue (thesis: 8) *)
  queue_depth_override : int option;
      (** simulation-time depth override for every queue; [None] keeps
          each queue's extracted depth.  Sweeping it re-simulates an
          extraction without re-extracting (Figure 6.6, the DSE engine) *)
  queue_latency : int;  (** give->visible cycles (thesis: 2) *)
  inline_aggressive : bool;  (** inline every call before DSWP *)
  inline_threshold : int;  (** size bound for default inlining *)
  unroll : bool;  (** LegUp-style full unrolling of small counted loops *)
  resources : Schedule.resources;  (** functional units per HW thread *)
  modulo : bool;  (** enable the modulo scheduler *)
  bus_contention : bool;  (** model 1-message-per-cycle buses *)
  fuel : int;  (** simulation instruction budget *)
  sim_engine : Sim.engine;  (** rtsim engine used by every flow *)
  backend : Schedule.backend;
      (** RTL lowering for the hardware partitions: the LegUp-style
          monolithic FSM or the elastic dataflow template.  Drives the
          schedule flavour replayed by rtsim, the area model and the
          Verilog emitted for co-simulation ({!Schedule.Fsm} in
          [default_options]) *)
  pipeline_break : string option;
      (** fault injection: deliberately miscompile after the named
          pipeline stage (the fuzzer's planted-bug hook; see
          {!Pipeline.options}) *)
  comm : Comm.config;
      (** communication-pattern optimizer passes applied at extraction
          ([twillc --comm-opt]); {!Comm.none} in [default_options] *)
  mem_banks : int;
      (** shared-memory banks ({!Twill_ir.Memdep.plan}, [twillc
          --mem-banks]): hardware threads schedule with per-bank
          ordering chains, rtsim arbitrates one bus per bank, and both
          RTL backends emit banked memories.  Purely simulation-level —
          extraction is banking-invariant, so twilld keys it only into
          the sim cache.  1 (the default) is the single-port seed
          behaviour *)
  check_memdep : bool;
      (** runtime alias checker: trap if two accesses the dependence
          oracle declared independent touch the same address within a
          2-cycle window (debug; default off) *)
}

val default_options : options

(** [compile src] parses, type-checks and optimises a mini-C program
    through the standard pass pipeline (thesis §5.1). *)
val compile : ?opts:options -> string -> Ir.modul

(** [profile_blocks m] runs one instrumented interpretation and returns
    per-block execution counts of [main] — the profile guiding the
    partitioner's weights. *)
val profile_blocks : ?opts:options -> Ir.modul -> int array

(** [extract m] runs the profile-guided DSWP thread extraction on an
    optimised module (thesis §5.2-5.3).  Pass [?profile] (from
    {!profile_blocks}) to reuse one instrumented run across repeated
    extractions of the same module, or [?prep] (from {!Dswp.prepare}) to
    additionally reuse the partition-independent analyses. *)
val extract :
  ?opts:options ->
  ?profile:int array ->
  ?prep:Dswp.prep ->
  Ir.modul ->
  Dswp.threaded

(** Like {!extract}, also returning the communication optimizer's
    report: which of the [opts.comm] passes ran and what each did
    (channels hoisted/merged, queues re-sized, burst flags).  When the
    profile-guided passes are enabled this runs one seed simulation of
    the unoptimized pipeline to collect {!Sim.queue_profile}s first. *)
val extract_comm :
  ?opts:options ->
  ?profile:int array ->
  ?prep:Dswp.prep ->
  Ir.modul ->
  Dswp.threaded * Comm.report

(** Simulator configuration corresponding to [opts]. *)
val sim_config : options -> Sim.config

(** Per-stage simulator thread specs of an extracted pipeline. *)
val thread_specs : Dswp.threaded -> Sim.thread_spec array

(** One evaluated execution flow. *)
type scenario = {
  cycles : int;  (** simulated makespan *)
  ret : int32;  (** program result *)
  prints : int32 list;  (** observable output trace *)
  area : Area.t;  (** FPGA logic deployed (excluding the soft core) *)
  power_mw : float;
  executed : int;  (** instructions executed across all threads *)
}

(** The Twill hybrid flow's result, with extraction details. *)
type twill_result = {
  scenario : scenario;
  threaded : Dswp.threaded;
  hw_threads_area : Area.t;  (** LegUp-translated thread logic only *)
  runtime_area : Area.t;  (** queues, semaphores, buses, interfaces *)
  n_hw_threads : int;
  nqueues : int;
  nsems : int;
  stats : Sim.stats;
}

(** Whole program on the Microblaze model (thesis baseline 1). *)
val run_pure_sw : ?opts:options -> Ir.modul -> scenario

(** Whole program through the LegUp-substitute hardware flow with local
    BRAM memory (thesis baseline 2). *)
val run_pure_hw : ?opts:options -> Ir.modul -> scenario

(** The Twill hybrid at the configured pipeline width.  [?profile] and
    [?prep] as in {!extract}. *)
val run_twill :
  ?opts:options ->
  ?profile:int array ->
  ?prep:Dswp.prep ->
  Ir.modul ->
  twill_result

(** Simulation plus area/power accounting for an already-extracted
    pipeline (the back half of {!run_twill}); lets sweeps reuse one
    extraction across simulator configurations. *)
val run_twill_threaded : ?opts:options -> Dswp.threaded -> twill_result

(** Everything [twillc comm-report] (and the [twilld] "comm" request)
    shows: the unoptimized extraction's per-channel profile, the pass
    report under [opts.comm], the post-optimization channel table and
    the base-vs-optimized cycle counts. *)
type comm_summary = {
  comm_rep : Comm.report;
  comm_profile : Sim.queue_profile array;
      (** seed profile of the unoptimized extraction, indexed by qid *)
  comm_queues : Threadgen.queue_info array;  (** post-optimization *)
  comm_base_cycles : int;
  comm_opt_cycles : int;
}

val comm_summarize : ?opts:options -> Ir.modul -> comm_summary

(** Co-simulates the emitted RTL of an extracted design (hardware threads
    and runtime primitives elaborated under {!Vsim}) against the
    cycle-accurate [rtsim] reference, checking that both observe the same
    return value and print trace.  [engine] forces the Vsim scheduling
    engine (default: levelized with automatic fixpoint fallback).  [vcd]
    dumps one waveform per RTL instance under that path prefix.
    @raise Twill_vsim.Cosim.Cosim_error on a stuck co-simulation. *)
val cosim :
  ?opts:options -> ?engine:Vsim.engine -> ?vcd:string -> Dswp.threaded ->
  Cosim.report

(** Three-way differential co-simulation verdict: the rtsim reference
    against both RTL lowerings (monolithic FSM and elastic dataflow)
    of one extraction. *)
type backends_report = {
  bk_fsm : Cosim.report;  (** FSM RTL vs its rtsim replay *)
  bk_dataflow : Cosim.report;  (** dataflow RTL vs its rtsim replay *)
  bk_ops_match : bool;
      (** per-stage HWInterface call-port issue streams identical
          between the two RTL backends — the per-cycle observation
          points of the differential oracle (the order chains
          serialize memory/queue traffic, so any valid schedule of one
          partition must drive the same request sequence).  With
          [opts.mem_banks > 1] each bank port is an independent
          ordering domain, so the comparison is per-projection: every
          per-bank memory stream and the non-memory stream must match *)
  bk_agree : bool;
      (** everything agrees: each RTL run matches its rtsim reference,
          the two RTL runs observe the same return value and prints,
          and the call-port streams match *)
}

(** Runs rtsim + FSM-RTL + dataflow-RTL over one extracted design and
    cross-checks all three (final state, print traces, and per-stage
    call-port issue streams between the RTL backends).
    @raise Twill_vsim.Cosim.Cosim_error on a stuck co-simulation. *)
val cosim_backends :
  ?opts:options -> ?engine:Vsim.engine -> Dswp.threaded -> backends_report

(** Tries several pipeline widths and keeps the best (the analogue of the
    thesis's iterated partitioning, §5.2); ties go to deeper pipelines. *)
val run_twill_auto : ?opts:options -> ?widths:int list -> Ir.modul -> twill_result

(** Full report over the three flows. *)
type report = {
  name : string;
  sw : scenario;
  hw : scenario;
  twill : twill_result;
  speedup_vs_sw : float;
  speedup_vs_hw : float;
  hw_speedup_vs_sw : float;
}

exception Self_check_failed of string

(** [evaluate ~name src] compiles [src] and runs all three flows, raising
    {!Self_check_failed} if they observe different behaviour.
    [auto_stages] (default true) enables width auto-tuning. *)
val evaluate : ?opts:options -> ?auto_stages:bool -> name:string -> string -> report

(** {1 Unified per-stage observation}

    Every layer of the stack that claims observational equivalence with
    the source program is one observation point; the differential fuzzer
    ([lib/fuzz]) compares them pairwise.  [observe] runs a single point
    over a source string and reduces the run to return value + print
    trace. *)

type observation = { obs_ret : int32; obs_prints : int32 list }

type obs_stage =
  | Obs_ast  (** typed-AST reference interpreter *)
  | Obs_ir of Interp.engine  (** raw (unoptimised) IR *)
  | Obs_opt of int * Interp.engine
      (** after the first [k] stages of {!Pipeline.stage_names} *)
  | Obs_rtsim  (** partitioned cycle-accurate simulation *)
  | Obs_vsim of Vsim.engine  (** RTL co-simulation of the emitted design *)
  | Obs_velastic of Vsim.engine
      (** RTL co-simulation of the elastic dataflow lowering of the
          same pipeline — every RTL-reaching fuzz case exercises both
          backends through this stage *)

type obs_outcome =
  | Obs_ok of observation
  | Obs_skip of string  (** ran out of budget; not a verdict *)
  | Obs_error of string  (** the stage failed outright *)

val obs_stage_name : obs_stage -> string

val obs_stages : obs_stage list
(** All observation points in pipeline order (the fuzzer's full stack). *)

val observe : ?opts:options -> stage:obs_stage -> string -> obs_outcome
(** Runs one observation point over one source program.  Out-of-fuel
    runs are [Obs_skip]; traps, deadlocks and harness failures are
    [Obs_error]; no exception escapes. *)

(**/**)

val pipeline_options : options -> Pipeline.options
val reachable_funcs : Ir.modul -> string list -> string list
val schedules_for : options -> Ir.modul -> (string * Schedule.t) list
