(* One authoritative table per user-facing enum.

   The backend / rtsim-engine / vsim-engine spellings used to be parsed
   in three independent places (the cmdliner enums in bin/twillc.ml,
   Grid.parse in lib/dse, the request decoders in lib/serve) — adding a
   value meant touching all of them and hoping the spellings stayed in
   sync.  Every table here derives from the type's canonical [*_name]
   printer, so a spelling can only exist once, and every parser rejects
   unknown values with the full valid list. *)

module Schedule = Twill_hls.Schedule
module Sim = Twill_rtsim.Sim
module Vsim = Twill_vsim.Vsim

let of_assoc (type a) ~(what : string) (assoc : (string * a) list) (s : string)
    : (a, string) result =
  match List.assoc_opt s assoc with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown %s %S (valid: %s)" what s
           (String.concat ", " (List.map fst assoc)))

(* RTL lowering for the hardware partitions. *)
let backends : (string * Schedule.backend) list =
  List.map (fun b -> (Schedule.backend_name b, b)) Schedule.all_backends

let backend_of_string = of_assoc ~what:"backend" backends

(* Runtime-simulator execution engine. *)
let sim_engines : (string * Sim.engine) list =
  List.map (fun e -> (Sim.engine_name e, e)) [ Sim.Compiled; Sim.Interpreted ]

let sim_engine_of_string = of_assoc ~what:"engine" sim_engines

(* Verilog-simulator scheduling engine. *)
let vsim_engines : (string * Vsim.engine) list =
  List.map
    (fun e -> (Vsim.engine_name e, e))
    [ Vsim.Compiled; Vsim.Levelized; Vsim.Fixpoint ]

let vsim_engine_of_string = of_assoc ~what:"vsim engine" vsim_engines
