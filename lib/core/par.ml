(* Deterministic domain-parallelism for independent evaluation scenarios.

   A process-wide slot budget of [recommended_domain_count () - 1] bounds
   the number of live worker domains no matter how callers nest ([pair]
   inside [map] inside the benchmark harness): a combinator only spawns a
   domain when it wins a slot, and otherwise runs the work inline on the
   calling domain.  Results keep the input order and exceptions are
   re-raised on the caller, so a parallel run is observationally the same
   as the sequential one provided the thunks are independent — which is
   exactly the contract the driver's scenarios satisfy now that DSWP no
   longer mutates its input module. *)

let slots =
  Atomic.make (max 0 (Domain.recommended_domain_count () - 1))

let rec try_take () =
  let n = Atomic.get slots in
  if n <= 0 then false
  else if Atomic.compare_and_set slots n (n - 1) then true
  else try_take ()

let release () = Atomic.incr slots
let available () = Atomic.get slots

let map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results : ('b, exn) result option array = Array.make n None in
      let run i =
        results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e)
      in
      let doms = ref [] in
      (* index 0 always runs on the caller, so at least one item makes
         progress even with an empty budget *)
      for i = 1 to n - 1 do
        if try_take () then
          doms :=
            Domain.spawn (fun () ->
                Fun.protect ~finally:release (fun () -> run i))
            :: !doms
        else run i
      done;
      run 0;
      List.iter Domain.join !doms;
      Array.to_list results
      |> List.map (function
           | Some (Ok y) -> y
           | Some (Error e) -> raise e
           | None -> assert false)

(* --- persistent worker pool --------------------------------------------- *)

(* A long-lived pool for servers (twilld): worker domains are spawned
   once — against the same process-wide slot budget as the one-shot
   combinators, so a pool plus nested [map]/[pair] calls still cannot
   oversubscribe — and jobs are fed through a shared queue.  Keeping the
   domains alive is what makes per-domain state (the driver's
   Domain.DLS-keyed preparation memos) survive across requests, which is
   the entire point: a warm worker re-serves a repeated request from its
   memo instead of re-elaborating.

   The caller of [pool_map] always participates — it runs the first item
   inline and then helps drain the queue — so a pool with zero workers
   (single-core budget) degrades to a plain sequential map instead of
   deadlocking. *)

type pool = {
  pmu : Mutex.t;
  pcond : Condition.t; (* signals: new task, shutdown, or task completion *)
  ptasks : (unit -> unit) Queue.t;
  mutable pshut : bool;
  mutable pdoms : unit Domain.t list;
  mutable pworkers : int;
}

let rec pool_worker (p : pool) () =
  Mutex.lock p.pmu;
  while Queue.is_empty p.ptasks && not p.pshut do
    Condition.wait p.pcond p.pmu
  done;
  if Queue.is_empty p.ptasks then (* shutting down *) Mutex.unlock p.pmu
  else begin
    let task = Queue.pop p.ptasks in
    Mutex.unlock p.pmu;
    task ();
    pool_worker p ()
  end

let pool ?workers () : pool =
  let want =
    match workers with
    | Some w -> max 0 w
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let p =
    {
      pmu = Mutex.create ();
      pcond = Condition.create ();
      ptasks = Queue.create ();
      pshut = false;
      pdoms = [];
      pworkers = 0;
    }
  in
  let spawned = ref 0 in
  for _ = 1 to want do
    if try_take () then begin
      incr spawned;
      p.pdoms <-
        Domain.spawn (fun () ->
            Fun.protect ~finally:release (fun () -> pool_worker p ()))
        :: p.pdoms
    end
  done;
  p.pworkers <- !spawned;
  p

let pool_workers (p : pool) = p.pworkers

let pool_map (p : pool) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results : ('b, exn) result option array = Array.make n None in
      let completed = ref 0 in
      let task i () =
        let r = try Ok (f arr.(i)) with e -> Error e in
        Mutex.lock p.pmu;
        results.(i) <- Some r;
        incr completed;
        Condition.broadcast p.pcond;
        Mutex.unlock p.pmu
      in
      Mutex.lock p.pmu;
      for i = 1 to n - 1 do
        Queue.add (task i) p.ptasks
      done;
      Condition.broadcast p.pcond;
      Mutex.unlock p.pmu;
      task 0 ();
      (* help drain the queue (possibly including other callers' jobs —
         work conservation), then wait out any in-flight workers *)
      let rec help () =
        Mutex.lock p.pmu;
        if Queue.is_empty p.ptasks then Mutex.unlock p.pmu
        else begin
          let t = Queue.pop p.ptasks in
          Mutex.unlock p.pmu;
          t ();
          help ()
        end
      in
      help ();
      Mutex.lock p.pmu;
      while !completed < n do
        Condition.wait p.pcond p.pmu
      done;
      Mutex.unlock p.pmu;
      Array.to_list results
      |> List.map (function
           | Some (Ok y) -> y
           | Some (Error e) -> raise e
           | None -> assert false)

let pool_shutdown (p : pool) =
  Mutex.lock p.pmu;
  p.pshut <- true;
  Condition.broadcast p.pcond;
  Mutex.unlock p.pmu;
  List.iter Domain.join p.pdoms;
  p.pdoms <- []

let pair (f : unit -> 'a) (g : unit -> 'b) : 'a * 'b =
  if try_take () then begin
    let d =
      Domain.spawn (fun () ->
          Fun.protect ~finally:release (fun () ->
              try Ok (g ()) with e -> Error e))
    in
    let a = try Ok (f ()) with e -> Error e in
    let b = Domain.join d in
    match (a, b) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end
  else
    let a = f () in
    let b = g () in
    (a, b)
