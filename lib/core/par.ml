(* Deterministic domain-parallelism for independent evaluation scenarios.

   A process-wide slot budget of [recommended_domain_count () - 1] bounds
   the number of live worker domains no matter how callers nest ([pair]
   inside [map] inside the benchmark harness): a combinator only spawns a
   domain when it wins a slot, and otherwise runs the work inline on the
   calling domain.  Results keep the input order and exceptions are
   re-raised on the caller, so a parallel run is observationally the same
   as the sequential one provided the thunks are independent — which is
   exactly the contract the driver's scenarios satisfy now that DSWP no
   longer mutates its input module. *)

let slots =
  Atomic.make (max 0 (Domain.recommended_domain_count () - 1))

let rec try_take () =
  let n = Atomic.get slots in
  if n <= 0 then false
  else if Atomic.compare_and_set slots n (n - 1) then true
  else try_take ()

let release () = Atomic.incr slots
let available () = Atomic.get slots

let map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results : ('b, exn) result option array = Array.make n None in
      let run i =
        results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e)
      in
      let doms = ref [] in
      (* index 0 always runs on the caller, so at least one item makes
         progress even with an empty budget *)
      for i = 1 to n - 1 do
        if try_take () then
          doms :=
            Domain.spawn (fun () ->
                Fun.protect ~finally:release (fun () -> run i))
            :: !doms
        else run i
      done;
      run 0;
      List.iter Domain.join !doms;
      Array.to_list results
      |> List.map (function
           | Some (Ok y) -> y
           | Some (Error e) -> raise e
           | None -> assert false)

let pair (f : unit -> 'a) (g : unit -> 'b) : 'a * 'b =
  if try_take () then begin
    let d =
      Domain.spawn (fun () ->
          Fun.protect ~finally:release (fun () ->
              try Ok (g ()) with e -> Error e))
    in
    let a = try Ok (f ()) with e -> Error e in
    let b = Domain.join d in
    match (a, b) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end
  else
    let a = f () in
    let b = g () in
    (a, b)
