(** The design-space exploration engine: evaluates every point of a
    {!Grid.t} with three levels of incremental reuse (pass-prefix
    sharing via [Pipeline.run_range], one DSWP extraction per
    (kernel, unroll, nstages, sw_frac), per-point simulation only) and
    reduces the sweep to a Pareto frontier plus per-axis sensitivity
    summaries.  Evaluation fans out over [Par] domains; results are
    identical however the sweep is sharded. *)

val opts_of_point : Grid.point -> Twill.options
(** The full option set one point evaluates under (partition width and
    split, unrolling, queue depth override, queue latency, engine). *)

val eval_threaded : Twill.options -> Twill.Dswp.threaded -> Pareto.metrics
(** Simulate an already-extracted design under [opts] and project the
    objectives.  This is the sim-level inner loop, also used by the
    [twilld] dse handler against its persistent elaboration cache. *)

val source_of_kernel : string -> string
(** Mini-C source of a bundled CHStone kernel ([Chstone.find]). *)

(** Analytic reuse accounting, derived from the key structure of the
    evaluated points (not from cache events), so it is independent of
    sharding and timing. *)
type reuse = {
  points : int;
  compiles : int;  (** distinct (kernel, unroll) pipelines run *)
  full_compiles : int;  (** ... of which paid the full pass prefix *)
  prefix_reused : int;  (** ... of which started from a prefix snapshot *)
  extractions : int;  (** distinct DSWP extractions *)
  simulations : int;  (** = points: every point simulates *)
}

val hit_rate : paid:int -> total:int -> float
(** [1 - paid/total]: the fraction of points that reused earlier work at
    a given level. *)

type sweep = {
  grid : Grid.t;
  seed : int;
  sampled : int option;
  results : Pareto.result list;  (** grid order *)
  frontier : Pareto.result list;
  sensitivities : Pareto.sensitivity list;
  reuse : reuse;
}

val run : ?shards:int -> ?seed:int -> ?sample:int -> Grid.t -> sweep
(** Evaluate the grid (optionally a deterministic [sample] of it).
    [shards = 0] or omitted: one [Par] task per extraction group;
    [shards = n]: groups round-robin into [n] bundles.  The sweep is
    byte-identical either way. *)

val run_cold : ?seed:int -> ?sample:int -> Grid.t -> sweep
(** No-reuse baseline: every point recompiles and re-extracts from
    source.  Produces identical results to {!run} (the
    [Pipeline.run_range] splitting contract), at full cost — the
    reference the incremental engine's hit rates are measured against. *)

val json_of_sweep : sweep -> string
(** The committed BENCH_dse.json rendering: schema [twill-dse-v1], grid
    spec, reuse counters, a digest pinning every evaluated point, the
    frontier and per-axis sensitivities.  Deterministic — no wall-clock
    or machine-dependent fields. *)

val results_digest : Pareto.result list -> string
(** Hex digest over the canonical rendering of every result row. *)
