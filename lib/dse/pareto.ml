(* Pareto frontiers and per-axis sensitivity summaries over evaluated
   design points.

   Dominance is weak dominance over the objective triple
   (cycles, LUTs, power): [a] dominates [b] when a is no worse on all
   three and strictly better on at least one.  The frontier keeps every
   non-dominated point, collapsing objective ties to the earliest point
   in grid order so the frontier — like everything else in lib/dse — is
   a deterministic function of the grid. *)

type metrics = {
  cycles : int;
  luts : int;
  dsps : int;
  brams : int;
  power_mw : float;
  executed : int;
}

type result = { point : Grid.point; metrics : metrics }

let objectives (m : metrics) : int * int * float =
  (m.cycles, m.luts, m.power_mw)

let dominates (a : metrics) (b : metrics) : bool =
  a.cycles <= b.cycles && a.luts <= b.luts && a.power_mw <= b.power_mw
  && (a.cycles < b.cycles || a.luts < b.luts || a.power_mw < b.power_mw)

(* O(n^2) scan — grids are thousands of points, frontiers tens; fine. *)
let frontier (rs : result list) : result list =
  let arr = Array.of_list rs in
  let keep = ref [] in
  Array.iteri
    (fun i r ->
      let dominated = ref false in
      let tie_earlier = ref false in
      Array.iteri
        (fun j r' ->
          if j <> i && not !dominated then
            if dominates r'.metrics r.metrics then dominated := true
            else if
              j < i && objectives r'.metrics = objectives r.metrics
            then tie_earlier := true)
        arr;
      if (not !dominated) && not !tie_earlier then keep := r :: !keep)
    arr;
  List.rev !keep

(* --- per-axis sensitivity -------------------------------------------------- *)

(* For one axis, every point is compared against the point that agrees
   with it on every *other* axis but sits at the axis's baseline (first
   grid value): slowdown = cycles / cycles_at_baseline.  The summary per
   axis value aggregates those ratios over all such groups — the grid
   regrown into the shape of the thesis's Figures 6.5/6.6, where each
   curve is normalised to its leftmost configuration.  Arithmetic mean
   on purpose: +,/ only, so the committed JSON is bit-reproducible
   across libms (no log/exp). *)

type sensitivity = {
  axis : string;
  value : string;
  n : int;  (** ratios aggregated *)
  mean_slowdown : float;
  min_slowdown : float;
  max_slowdown : float;
}

(* accessor per sweepable axis: value-as-string + the group key of the
   remaining coordinates *)
let backend_str (pt : Grid.point) : string =
  Grid.Schedule.backend_name pt.Grid.backend

let axes : (string * (Grid.point -> string) * (Grid.point -> string)) list =
  let p = Printf.sprintf in
  [
    ( "queue_latency",
      (fun pt -> string_of_int pt.Grid.queue_latency),
      fun pt ->
        p "%s|%b|%d|%s|%d|%s|%s|%s|%d" pt.Grid.kernel pt.Grid.unroll
          pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac) pt.Grid.queue_depth
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm (backend_str pt) pt.Grid.banks );
    ( "queue_depth",
      (fun pt -> string_of_int pt.Grid.queue_depth),
      fun pt ->
        p "%s|%b|%d|%s|%d|%s|%s|%s|%d" pt.Grid.kernel pt.Grid.unroll
          pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac) pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm (backend_str pt) pt.Grid.banks );
    ( "nstages",
      (fun pt -> string_of_int pt.Grid.nstages),
      fun pt ->
        p "%s|%b|%s|%d|%d|%s|%s|%s|%d" pt.Grid.kernel pt.Grid.unroll
          (Grid.float_str pt.Grid.sw_frac) pt.Grid.queue_depth
          pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm (backend_str pt) pt.Grid.banks );
    ( "unroll",
      (fun pt -> string_of_bool pt.Grid.unroll),
      fun pt ->
        p "%s|%d|%s|%d|%d|%s|%s|%s|%d" pt.Grid.kernel pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac) pt.Grid.queue_depth
          pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm (backend_str pt) pt.Grid.banks );
    ( "comm",
      (fun pt -> pt.Grid.comm),
      fun pt ->
        p "%s|%b|%d|%s|%d|%d|%s|%s|%d" pt.Grid.kernel pt.Grid.unroll
          pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac)
          pt.Grid.queue_depth pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          (backend_str pt) pt.Grid.banks );
    ( "backend",
      backend_str,
      fun pt ->
        p "%s|%b|%d|%s|%d|%d|%s|%s|%d" pt.Grid.kernel pt.Grid.unroll
          pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac)
          pt.Grid.queue_depth pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm pt.Grid.banks );
    ( "banks",
      (fun pt -> string_of_int pt.Grid.banks),
      fun pt ->
        p "%s|%b|%d|%s|%d|%d|%s|%s|%s" pt.Grid.kernel pt.Grid.unroll
          pt.Grid.nstages
          (Grid.float_str pt.Grid.sw_frac)
          pt.Grid.queue_depth pt.Grid.queue_latency
          (Grid.engine_str pt.Grid.engine)
          pt.Grid.comm (backend_str pt) );
  ]

let axis_values (g : Grid.t) (axis : string) : string list =
  match axis with
  | "queue_latency" -> List.map string_of_int g.Grid.queue_latencies
  | "queue_depth" -> List.map string_of_int g.Grid.queue_depths
  | "nstages" -> List.map string_of_int g.Grid.nstages
  | "unroll" -> List.map string_of_bool g.Grid.unrolls
  | "comm" -> g.Grid.comms
  | "backend" -> List.map Grid.Schedule.backend_name g.Grid.backends
  | "banks" -> List.map string_of_int g.Grid.banks
  | _ -> []

let sensitivities (g : Grid.t) (rs : result list) : sensitivity list =
  List.concat_map
    (fun (axis, value_of, group_of) ->
      match axis_values g axis with
      | [] | [ _ ] -> [] (* nothing swept on this axis *)
      | baseline :: _ as values ->
          (* cycles of each group's baseline point *)
          let base : (string, int) Hashtbl.t = Hashtbl.create 64 in
          List.iter
            (fun r ->
              if value_of r.point = baseline then
                Hashtbl.replace base (group_of r.point) r.metrics.cycles)
            rs;
          (* per-value aggregation, in the grid's value order *)
          List.filter_map
            (fun v ->
              let n = ref 0 and sum = ref 0.0 in
              let mn = ref infinity and mx = ref neg_infinity in
              List.iter
                (fun r ->
                  if value_of r.point = v then
                    match Hashtbl.find_opt base (group_of r.point) with
                    | Some c0 when c0 > 0 ->
                        let ratio =
                          float_of_int r.metrics.cycles /. float_of_int c0
                        in
                        incr n;
                        sum := !sum +. ratio;
                        if ratio < !mn then mn := ratio;
                        if ratio > !mx then mx := ratio
                    | _ -> ())
                rs;
              if !n = 0 then None
              else
                Some
                  {
                    axis;
                    value = v;
                    n = !n;
                    mean_slowdown = !sum /. float_of_int !n;
                    min_slowdown = !mn;
                    max_slowdown = !mx;
                  })
            values)
    axes
