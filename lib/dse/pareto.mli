(** Pareto frontiers over (cycles, LUTs, power) and per-axis sensitivity
    summaries — the analysis half of the DSE subsystem.  Everything here
    is a deterministic, libm-free function of its inputs, so committed
    artifacts (BENCH_dse.json) are byte-reproducible. *)

(** Objective metrics of one evaluated point. *)
type metrics = {
  cycles : int;  (** simulated makespan *)
  luts : int;  (** deployed FPGA logic, {!Twill_hls.Area} *)
  dsps : int;
  brams : int;
  power_mw : float;  (** {!Twill_hls.Power} under measured activity *)
  executed : int;
}

type result = { point : Grid.point; metrics : metrics }

val dominates : metrics -> metrics -> bool
(** Weak Pareto dominance over (cycles, luts, power_mw): no worse on
    all three and strictly better on at least one. *)

val frontier : result list -> result list
(** Non-dominated subset in input order; points with identical
    objective triples collapse to the earliest. *)

type sensitivity = {
  axis : string;
  value : string;
  n : int;  (** slowdown ratios aggregated *)
  mean_slowdown : float;  (** cycles / cycles at the axis baseline *)
  min_slowdown : float;
  max_slowdown : float;
}

val sensitivities : Grid.t -> result list -> sensitivity list
(** Per-axis slowdown summaries: each point is normalised to the point
    agreeing on every other axis at the axis's first (baseline) grid
    value — the grid re-grown into the shape of Figures 6.5/6.6.  Axes
    with fewer than two swept values are omitted. *)
