(** Design-space grids: the axes of the thesis's Chapter-6 sensitivity
    studies as one first-class value, enumerated in a deterministic
    order so sweeps are reproducible across runs, machines and
    shardings. *)

module Sim = Twill_rtsim.Sim
module Comm = Twill_comm.Comm
module Schedule = Twill_hls.Schedule

type t = {
  kernels : string list;  (** bundled CHStone benchmark names *)
  unrolls : bool list;  (** compile level: full loop unrolling *)
  nstages : int list;  (** partition level: targeted pipeline width *)
  sw_fracs : float list;  (** partition level: master work share *)
  queue_depths : int list;  (** sim level: depth override (Fig. 6.6) *)
  queue_latencies : int list;  (** sim level: queue latency (Fig. 6.5) *)
  engines : Sim.engine list;  (** sim level: rtsim engine *)
  comms : string list;
      (** extraction level: canonical comm-optimizer pass-set specs
          ({!Comm.show} forms, e.g. ["none"], ["merge"],
          ["licm,merge,size,burst"]) *)
  backends : Schedule.backend list;
      (** sim level: RTL lowering of the hardware partitions (the
          monolithic FSM or the elastic dataflow template); both share
          one extraction and differ only in replayed schedule flavour
          and area model *)
  banks : int list;
      (** sim level: shared-memory bank counts
          ({!Twill_ir.Memdep.plan}); the banking plan is a pure
          function of the module, so every bank count re-simulates one
          shared extraction *)
}

(** One evaluated configuration. *)
type point = {
  kernel : string;
  unroll : bool;
  nstages : int;
  sw_frac : float;
  queue_depth : int;
  queue_latency : int;
  engine : Sim.engine;
  comm : string;
  backend : Schedule.backend;
  banks : int;
}

val default : t
(** The committed-benchmark grid: 4 kernels x 2 unroll x 3 widths x
    5 depths x 5 latencies (comm off) = 600 points over 24
    extractions. *)

val npoints : t -> int

val points : t -> point list
(** Cartesian enumeration, kernels outermost / banks innermost. *)

val parse : ?base:t -> string -> (t, string) result
(** ["kernels=mips,sha;queue_latency=2,8,32"] — axes absent from the
    spec keep their [base] (default: {!default}) values.  Accepted axis
    names: [kernels], [unroll], [nstages], [sw_frac], [queue_depth],
    [queue_latency], [engine], [comm], [backend], [banks] (plus common
    aliases).  Unknown axis names and unknown engine/backend values
    are rejected with an error naming the offender.  Comm
    values join passes with ["+"] (["comm=none,merge+size,all"]) since
    [","] separates axis values; each is canonicalized via
    {!Comm.parse}/{!Comm.show}. *)

val to_spec : t -> string
(** Canonical spec string listing every axis; [parse (to_spec g)]
    re-reads [g] exactly. *)

val sample : seed:int -> int -> point list -> point list
(** Deterministic grid-order-preserving subset of size [n] (identity
    when [n] covers the list). *)

val compile_key : point -> string * bool
(** Axes that change compilation; points sharing it share one pass
    pipeline run. *)

val extract_key : point -> string * bool * int * float * string * int
(** Axes that change DSWP extraction; points sharing it share one
    extraction and differ only in simulator configuration.  The final
    component is [queue_depth] when the point's comm passes are enabled
    (auto-sizing bakes depth into the extraction) and [0] otherwise
    (depth stays a sim-level override). *)

val point_label : point -> string

val float_str : float -> string
val engine_str : Sim.engine -> string
val engine_of_string : string -> (Sim.engine, string) result
