(* Design-space grid: the axes of the Chapter-6 sensitivity studies as
   one first-class value.  A grid is the cartesian product of

     kernel        x  (bundled CHStone benchmark)
     unroll        x  (compile-level: LegUp-style full unrolling)
     nstages       x  (partition: targeted pipeline width)
     sw_frac       x  (partition: software master work share)
     queue_depth   x  (simulation-level depth override, Figure 6.6)
     queue_latency x  (give->visible latency, Figure 6.5)
     engine        x  (rtsim engine)
     comm          x  (communication-optimizer pass set, lib/comm)
     backend       x  (RTL lowering: monolithic FSM or elastic dataflow)
     banks            (shared-memory bank count, lib/ir/memdep)

   enumerated in exactly that nesting order, innermost last, so a
   point list is deterministic and stable across runs, machines and
   shardings.  Axes are grouped by evaluation level: [unroll] changes
   compilation, [nstages]/[sw_frac]/[comm] change extraction, the rest
   only re-simulate — the DSE engine exploits that grouping for
   incremental reuse (see dse.ml).  [backend] is sim-level too: both
   lowerings share one extraction and differ only in the schedule
   flavour rtsim replays and the area model applied.  So is [banks]:
   the banking plan is a pure function of the module, so every bank
   count re-simulates (and re-prices) one shared extraction.  One wrinkle:
   when [comm] enables profile-guided passes, [queue_depth] becomes an
   extraction-level axis (the auto-sizing pass must see real per-queue
   depths, not the simulation-time override), which [extract_key]
   accounts for. *)

module Sim = Twill_rtsim.Sim
module Comm = Twill_comm.Comm
module Schedule = Twill_hls.Schedule

type t = {
  kernels : string list;
  unrolls : bool list;
  nstages : int list;
  sw_fracs : float list;
  queue_depths : int list;
  queue_latencies : int list;
  engines : Sim.engine list;
  comms : string list;
  backends : Schedule.backend list;
  banks : int list;
}

type point = {
  kernel : string;
  unroll : bool;
  nstages : int;
  sw_frac : float;
  queue_depth : int;
  queue_latency : int;
  engine : Sim.engine;
  comm : string;
  backend : Schedule.backend;
  banks : int;
}

(* The committed-benchmark grid (BENCH_dse.json): four kernels, both
   compile variants, three pipeline widths, the thesis's queue depth and
   latency sweeps — 600 points over 24 extractions and 8 compiles. *)
let default =
  {
    kernels = [ "mips"; "sha"; "gsm"; "motion" ];
    unrolls = [ false; true ];
    nstages = [ 2; 3; 4 ];
    sw_fracs = [ 0.002 ];
    queue_depths = [ 1; 2; 4; 8; 32 ];
    queue_latencies = [ 2; 4; 8; 32; 128 ];
    engines = [ Sim.Compiled ];
    comms = [ "none" ];
    backends = [ Schedule.Fsm ];
    banks = [ 1 ];
  }

let npoints (g : t) : int =
  List.length g.kernels * List.length g.unrolls * List.length g.nstages
  * List.length g.sw_fracs * List.length g.queue_depths
  * List.length g.queue_latencies * List.length g.engines
  * List.length g.comms * List.length g.backends * List.length g.banks

let points (g : t) : point list =
  List.concat_map
    (fun kernel ->
      List.concat_map
        (fun unroll ->
          List.concat_map
            (fun nstages ->
              List.concat_map
                (fun sw_frac ->
                  List.concat_map
                    (fun queue_depth ->
                      List.concat_map
                        (fun queue_latency ->
                          List.concat_map
                            (fun engine ->
                              List.concat_map
                                (fun comm ->
                                  List.concat_map
                                    (fun backend ->
                                      List.map
                                        (fun banks ->
                                          {
                                            kernel;
                                            unroll;
                                            nstages;
                                            sw_frac;
                                            queue_depth;
                                            queue_latency;
                                            engine;
                                            comm;
                                            backend;
                                            banks;
                                          })
                                        g.banks)
                                    g.backends)
                                g.comms)
                            g.engines)
                        g.queue_latencies)
                    g.queue_depths)
                g.sw_fracs)
            g.nstages)
        g.unrolls)
    g.kernels

(* --- spec strings -------------------------------------------------------- *)

(* "kernels=mips,sha;nstages=2,3;queue_latency=2,8,32" — unnamed axes
   keep their [default] values, so a spec only says what it sweeps. *)

let float_str (f : float) : string =
  (* shortest decimal form that round-trips; %g never emits exponents in
     the sw_frac range we use and parses back exactly *)
  Printf.sprintf "%g" f

let engine_str = Sim.engine_name

(* spellings live in one place: Twill.Enums *)
let engine_of_string = Twill.Enums.sim_engine_of_string

(* comm axis values are canonicalized pass-set spec strings ("none",
   "merge", "licm,merge,size,burst", ...): parse then re-show, so two
   spellings of the same set are one grid value. *)
let comm_of_string (s : string) : (string, string) result =
  Result.map Comm.show (Comm.parse s)

let to_spec (g : t) : string =
  let ints = List.map string_of_int in
  let axis name vals = name ^ "=" ^ String.concat "," vals in
  String.concat ";"
    [
      axis "kernels" g.kernels;
      axis "unroll" (List.map string_of_bool g.unrolls);
      axis "nstages" (ints g.nstages);
      axis "sw_frac" (List.map float_str g.sw_fracs);
      axis "queue_depth" (ints g.queue_depths);
      axis "queue_latency" (ints g.queue_latencies);
      axis "engine" (List.map engine_str g.engines);
      (* "+" joins passes inside one value; "," separates axis values *)
      axis "comm"
        (List.map
           (String.map (fun c -> if c = ',' then '+' else c))
           g.comms);
      axis "backend" (List.map Schedule.backend_name g.backends);
      axis "banks" (ints g.banks);
    ]

let split_commas (s : string) : string list =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_axis (type a) (name : string) (parse1 : string -> (a, string) result)
    (raw : string) : (a list, string) result =
  let rec go acc = function
    | [] ->
        if acc = [] then Error (Printf.sprintf "axis %s: empty" name)
        else Ok (List.rev acc)
    | v :: rest -> (
        match parse1 v with
        | Ok x -> go (x :: acc) rest
        | Error e -> Error (Printf.sprintf "axis %s: %s" name e))
  in
  go [] (split_commas raw)

let int1 s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S" s)

let float1 s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float %S" s)

let bool1 s =
  match bool_of_string_opt s with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "bad bool %S" s)

let parse ?(base = default) (spec : string) : (t, string) result =
  let ( let* ) = Result.bind in
  let entries =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.fold_left
    (fun acc entry ->
      let* g = acc in
      match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "bad axis %S (want name=v1,v2,...)" entry)
      | Some i -> (
          let name = String.trim (String.sub entry 0 i) in
          let raw =
            String.sub entry (i + 1) (String.length entry - i - 1)
          in
          match name with
          | "kernels" | "kernel" ->
              let* ks = parse_axis "kernels" (fun s -> Ok s) raw in
              Ok { g with kernels = ks }
          | "unroll" ->
              let* us = parse_axis "unroll" bool1 raw in
              Ok { g with unrolls = us }
          | "nstages" | "stages" ->
              let* ns = parse_axis "nstages" int1 raw in
              Ok { g with nstages = ns }
          | "sw_frac" | "sw-frac" ->
              let* fs = parse_axis "sw_frac" float1 raw in
              Ok { g with sw_fracs = fs }
          | "queue_depth" | "queue-depth" | "depth" ->
              let* ds = parse_axis "queue_depth" int1 raw in
              Ok { g with queue_depths = ds }
          | "queue_latency" | "queue-latency" | "latency" ->
              let* ls = parse_axis "queue_latency" int1 raw in
              Ok { g with queue_latencies = ls }
          | "engine" | "engines" ->
              let* es = parse_axis "engine" engine_of_string raw in
              Ok { g with engines = es }
          | "comm" | "comms" | "comm_opt" | "comm-opt" ->
              (* comma is the list separator here, so one axis value is
                 one pass name; multi-pass sets use "+": "merge+size" *)
              let comm1 s =
                comm_of_string
                  (String.concat ","
                     (String.split_on_char '+' s |> List.map String.trim))
              in
              let* cs = parse_axis "comm" comm1 raw in
              Ok { g with comms = cs }
          | "backend" | "backends" ->
              let* bs =
                parse_axis "backend" Twill.Enums.backend_of_string raw
              in
              Ok { g with backends = bs }
          | "banks" | "mem_banks" | "mem-banks" ->
              let* ks = parse_axis "banks" int1 raw in
              Ok { g with banks = ks }
          | other -> Error (Printf.sprintf "unknown axis %S" other)))
    (Ok base) entries

(* --- deterministic sampling ---------------------------------------------- *)

(* Fisher-Yates over the index space with an explicit PRNG state, then
   re-sorted, so a sampled grid is a grid-order-preserving subset that
   depends only on (seed, n, length). *)
let sample ~seed n (ps : point list) : point list =
  let len = List.length ps in
  if n >= len then ps
  else begin
    let st = Random.State.make [| 0x75EED; seed |] in
    let idx = Array.init len (fun i -> i) in
    for i = 0 to n - 1 do
      let j = i + Random.State.int st (len - i) in
      let t = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- t
    done;
    let keep = Array.sub idx 0 n in
    Array.sort compare keep;
    let arr = Array.of_list ps in
    Array.to_list (Array.map (fun i -> arr.(i)) keep)
  end

(* --- keys and labels ------------------------------------------------------ *)

(* Axes grouped by evaluation level: points sharing a [compile_key]
   share one pass-pipeline run, points sharing an [extract_key] share
   one DSWP extraction; only the remaining (sim-level) axes force a
   fresh cycle-accurate simulation. *)

let compile_key (p : point) : string * bool = (p.kernel, p.unroll)

(* When profile-guided comm passes run, queue depth is baked into the
   extraction (the sizing pass reads and rewrites real queue depths), so
   it joins the extraction key; plain points keep depth sim-level (0
   here) and sweep it via the simulation-time override. *)
let comm_extracts (comm : string) : bool =
  match Comm.parse comm with
  | Ok c -> Comm.enabled c
  | Error _ -> false

let extract_key (p : point) : string * bool * int * float * string * int =
  ( p.kernel,
    p.unroll,
    p.nstages,
    p.sw_frac,
    p.comm,
    if comm_extracts p.comm then p.queue_depth else 0 )

let point_label (p : point) : string =
  Printf.sprintf "%s%s k=%d f=%s d=%d l=%d %s%s%s" p.kernel
    (if p.unroll then "+unroll" else "")
    p.nstages (float_str p.sw_frac) p.queue_depth p.queue_latency
    (engine_str p.engine)
    (if p.comm = "none" then "" else " comm=" ^ p.comm)
    (match p.backend with
    | Schedule.Fsm -> ""
    | Schedule.Dataflow -> " dataflow")
    ^ (if p.banks = 1 then "" else Printf.sprintf " b=%d" p.banks)
