(* The design-space exploration engine.

   Evaluates every point of a {!Grid.t} — thousands of (kernel x
   partition x queue x engine) configurations — and reduces the sweep to
   a Pareto frontier over (cycles, LUTs, power) plus per-axis
   sensitivity curves.  Three levels of incremental reuse keep the cost
   proportional to the number of *distinct suffixes*, not the grid size:

     compile   one pass-pipeline run per (kernel, unroll).  Variants of
               the same kernel share the pass prefix below the first
               option-dependent stage ("unroll"): the prefix runs once,
               the module is snapshotted, and only the remaining stages
               re-run per variant ([Pipeline.run_range] splits exactly
               like that, so an incremental compile is identical to a
               cold one).
     extract   one profile + DSWP preparation per compile, one
               extraction per (nstages, sw_frac, comm[, queue_depth])
               on top of it (depth joins the key only when comm passes
               rewrite extracted queue sizes; see [Grid.extract_key]).
     simulate  every point pays only its own cycle-accurate simulation;
               depth/latency/engine live in [Sim.config], so a sim-level
               point is one [Twill.run_twill_threaded] call.

   Sharding: extraction groups fan out over [Par] domains — either one
   task per group (default) or [~shards:n] round-robin bundles for the
   determinism tests.  Every evaluation is a pure function of its point,
   so the result list, the frontier and the rendered JSON are identical
   however the sweep is sharded. *)

module Ir = Twill_ir.Ir
module Pipeline = Twill_passes.Pipeline
module C = Twill_chstone.Chstone

let source_of_kernel (name : string) : string = (C.find name).C.source

let opts_of_point (p : Grid.point) : Twill.options =
  let comm =
    match Twill.Comm.parse p.Grid.comm with
    | Ok c -> c
    | Error e -> invalid_arg ("dse: comm axis: " ^ e)
  in
  let base =
    {
      Twill.default_options with
      partition =
        {
          Twill.Partition.default_config with
          Twill.Partition.nstages = p.Grid.nstages;
          sw_fraction = p.Grid.sw_frac;
        };
      unroll = p.Grid.unroll;
      queue_latency = p.Grid.queue_latency;
      sim_engine = p.Grid.engine;
      backend = p.Grid.backend;
      mem_banks = p.Grid.banks;
      comm;
    }
  in
  if Twill.Comm.enabled comm then
    (* comm passes rewrite real queue depths at extraction (auto-sizing,
       capacity-merging), so the depth axis moves to the extraction
       level: no simulation-time override masking the rewritten sizes *)
    {
      base with
      Twill.queue_depth = p.Grid.queue_depth;
      queue_depth_override = None;
    }
  else { base with Twill.queue_depth_override = Some p.Grid.queue_depth }

(* Simulation + objective projection of one already-extracted design
   under one point's simulator configuration. *)
let eval_threaded (opts : Twill.options) (t : Twill.Dswp.threaded) :
    Pareto.metrics =
  let r = Twill.run_twill_threaded ~opts t in
  let area = r.Twill.scenario.Twill.area in
  {
    Pareto.cycles = r.Twill.scenario.Twill.cycles;
    luts = area.Twill.Area.luts;
    dsps = area.Twill.Area.dsps;
    brams = area.Twill.Area.brams;
    power_mw = r.Twill.scenario.Twill.power_mw;
    executed = r.Twill.scenario.Twill.executed;
  }

(* --- level 1: incremental compilation ------------------------------------- *)

(* The IR is pure data (no closures, no custom blocks), so a pass-prefix
   snapshot is a Marshal round-trip. *)
let copy_modul (m : Ir.modul) : Ir.modul =
  Marshal.from_string (Marshal.to_string m []) 0

(* First pipeline stage whose behaviour depends on compile-level grid
   axes; everything before it is option-independent and shareable. *)
let unroll_stage =
  let rec idx i = function
    | [] -> failwith "dse: pipeline has no unroll stage"
    | "unroll" :: _ -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 Pipeline.stage_names

type compiled = {
  c_modul : Ir.modul;
  c_prep : Twill.Dswp.prep;  (* profile + PDG/weights, shared by widths *)
}

(* Compiles every unroll variant of one kernel: the shared prefix runs
   once on the base module, later variants run the remaining stages on a
   snapshot, the first finishes the base module in place. *)
let compile_kernel (kernel : string) (unrolls : bool list) :
    ((string * bool) * compiled) list =
  let src = source_of_kernel kernel in
  let base = Twill_minic.Minic.compile src in
  ignore (Pipeline.run_range 0 unroll_stage base);
  let modules =
    match unrolls with
    | [] -> []
    | first :: rest ->
        (* snapshot before the base is mutated by the first variant *)
        let copies = List.map (fun u -> (u, copy_modul base)) rest in
        (first, base) :: copies
  in
  List.map
    (fun (u, m) ->
      let opts = { Twill.default_options with unroll = u } in
      ignore
        (Pipeline.run_range
           ~opts:(Twill.pipeline_options opts)
           unroll_stage Pipeline.nstages m);
      let profile = Twill.profile_blocks ~opts m in
      let prep = Twill.Dswp.prepare ~profile m in
      ((kernel, u), { c_modul = m; c_prep = prep }))
    modules

(* --- the sweep ------------------------------------------------------------- *)

type reuse = {
  points : int;
  compiles : int;  (* distinct (kernel, unroll) pipelines run *)
  full_compiles : int;  (* ... of which paid the full pass prefix *)
  prefix_reused : int;  (* ... of which started from a prefix snapshot *)
  extractions : int;  (* distinct DSWP extractions *)
  simulations : int;  (* = points: every point simulates *)
}

let hit_rate ~paid ~total =
  if total = 0 then 0.0
  else float_of_int (total - paid) /. float_of_int total

type sweep = {
  grid : Grid.t;
  seed : int;
  sampled : int option;
  results : Pareto.result list;  (* grid order *)
  frontier : Pareto.result list;
  sensitivities : Pareto.sensitivity list;
  reuse : reuse;
}

(* stable grouping by key, preserving first-occurrence order *)
let group_by (type k) (key : 'a -> k) (xs : 'a list) : (k * 'a list) list =
  let tbl : (k, 'a list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := x :: !cell
      | None ->
          Hashtbl.replace tbl k (ref [ x ]);
          order := k :: !order)
    xs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order
  |> List.rev

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

(* round-robin [xs] into [n] bundles, preserving order inside a bundle *)
let round_robin n xs =
  let buckets = Array.make n [] in
  List.iteri (fun i x -> buckets.(i mod n) <- x :: buckets.(i mod n)) xs;
  Array.to_list (Array.map List.rev buckets)

let run ?shards ?(seed = 42) ?sample (g : Grid.t) : sweep =
  let pts =
    let all = Grid.points g in
    match sample with None -> all | Some n -> Grid.sample ~seed n all
  in
  (* level 1, parallel over kernels: each kernel compiles its unroll
     variants off one shared pass prefix *)
  let kernels = dedup (List.map (fun p -> p.Grid.kernel) pts) in
  let unrolls_of k =
    dedup
      (List.filter_map
         (fun p -> if p.Grid.kernel = k then Some p.Grid.unroll else None)
         pts)
  in
  let compiles =
    List.concat
      (Twill.Par.map (fun k -> compile_kernel k (unrolls_of k)) kernels)
  in
  (* levels 2+3, parallel over extraction groups (or [shards] bundles of
     groups): extract once per group, then simulate each point *)
  let indexed = List.mapi (fun i p -> (i, p)) pts in
  let groups = group_by (fun (_, p) -> Grid.extract_key p) indexed in
  let eval_group (_, ipts) =
    let _, p0 = List.hd ipts in
    let c = List.assoc (Grid.compile_key p0) compiles in
    let t =
      Twill.extract ~opts:(opts_of_point p0) ~prep:c.c_prep c.c_modul
    in
    List.map
      (fun (i, p) ->
        (i, { Pareto.point = p; metrics = eval_threaded (opts_of_point p) t }))
      ipts
  in
  let evaluated =
    match shards with
    | None | Some 0 -> List.concat (Twill.Par.map eval_group groups)
    | Some n ->
        List.concat
          (List.concat
             (Twill.Par.map (List.map eval_group)
                (round_robin (max 1 n) groups)))
  in
  let results =
    List.sort (fun (i, _) (j, _) -> compare i j) evaluated |> List.map snd
  in
  let compile_keys = dedup (List.map Grid.compile_key pts) in
  let reuse =
    {
      points = List.length pts;
      compiles = List.length compile_keys;
      full_compiles = List.length kernels;
      prefix_reused = List.length compile_keys - List.length kernels;
      extractions = List.length groups;
      simulations = List.length pts;
    }
  in
  {
    grid = g;
    seed;
    sampled = sample;
    results;
    frontier = Pareto.frontier results;
    sensitivities = Pareto.sensitivities g results;
    reuse;
  }

(* The no-reuse baseline the incremental engine is measured against:
   every point recompiles and re-extracts from source.  By the
   [Pipeline.run_range] splitting contract the results are identical to
   {!run} — the determinism suite checks that too. *)
let run_cold ?(seed = 42) ?sample (g : Grid.t) : sweep =
  let pts =
    let all = Grid.points g in
    match sample with None -> all | Some n -> Grid.sample ~seed n all
  in
  let eval_point p =
    let opts = opts_of_point p in
    let m = Twill.compile ~opts (source_of_kernel p.Grid.kernel) in
    let t = Twill.extract ~opts m in
    { Pareto.point = p; metrics = eval_threaded opts t }
  in
  let results = Twill.Par.map eval_point pts in
  let n = List.length pts in
  let reuse =
    {
      points = n;
      compiles = n;
      full_compiles = n;
      prefix_reused = 0;
      extractions = n;
      simulations = n;
    }
  in
  {
    grid = g;
    seed;
    sampled = sample;
    results;
    frontier = Pareto.frontier results;
    sensitivities = Pareto.sensitivities g results;
    reuse;
  }

(* --- deterministic JSON rendering (BENCH_dse.json) ------------------------- *)

(* Hand-rolled like bench/main.ml's other artifacts.  Deliberately free
   of wall-clock or machine-dependent fields: the same grid and seed
   must reproduce the file byte-for-byte (integers from the simulator,
   floats from +,*,/ only, fixed-point formatting). *)

let result_line (r : Pareto.result) : string =
  let p = r.Pareto.point and m = r.Pareto.metrics in
  Printf.sprintf
    "{\"kernel\": %S, \"unroll\": %b, \"nstages\": %d, \"sw_frac\": %s, \
     \"queue_depth\": %d, \"queue_latency\": %d, \"engine\": %S, \
     \"comm\": %S, \"backend\": %S, \"banks\": %d, \"cycles\": %d, \
     \"luts\": %d, \"dsps\": %d, \"brams\": %d, \"power_mw\": %.6f, \
     \"executed\": %d}"
    p.Grid.kernel p.Grid.unroll p.Grid.nstages
    (Grid.float_str p.Grid.sw_frac)
    p.Grid.queue_depth p.Grid.queue_latency
    (Grid.engine_str p.Grid.engine)
    p.Grid.comm
    (Twill.Schedule.backend_name p.Grid.backend)
    p.Grid.banks
    m.Pareto.cycles m.Pareto.luts m.Pareto.dsps m.Pareto.brams
    m.Pareto.power_mw m.Pareto.executed

(* one digest covers the full result set, so the committed file pins
   every evaluated point without carrying thousands of rows *)
let results_digest (rs : Pareto.result list) : string =
  Digest.to_hex (Digest.string (String.concat "\n" (List.map result_line rs)))

let sensitivity_line (s : Pareto.sensitivity) : string =
  Printf.sprintf
    "{\"axis\": %S, \"value\": %S, \"n\": %d, \"mean_slowdown\": %.4f, \
     \"min_slowdown\": %.4f, \"max_slowdown\": %.4f}"
    s.Pareto.axis s.Pareto.value s.Pareto.n s.Pareto.mean_slowdown
    s.Pareto.min_slowdown s.Pareto.max_slowdown

let json_of_sweep (s : sweep) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"twill-dse-v1\",\n";
  add "  \"grid\": %S,\n" (Grid.to_spec s.grid);
  add "  \"seed\": %d,\n" s.seed;
  (match s.sampled with
  | None -> add "  \"sampled\": null,\n"
  | Some n -> add "  \"sampled\": %d,\n" n);
  add "  \"points\": %d,\n" (List.length s.results);
  add
    "  \"reuse\": {\"points\": %d, \"compiles\": %d, \"full_compiles\": %d, \
     \"prefix_reused\": %d, \"extractions\": %d, \"simulations\": %d, \
     \"compile_hit_rate\": %.4f, \"extract_hit_rate\": %.4f},\n"
    s.reuse.points s.reuse.compiles s.reuse.full_compiles
    s.reuse.prefix_reused s.reuse.extractions s.reuse.simulations
    (hit_rate ~paid:s.reuse.compiles ~total:s.reuse.points)
    (hit_rate ~paid:s.reuse.extractions ~total:s.reuse.points);
  add "  \"results_digest\": %S,\n" (results_digest s.results);
  add "  \"frontier\": [\n";
  List.iteri
    (fun i r ->
      add "    %s%s\n" (result_line r)
        (if i < List.length s.frontier - 1 then "," else ""))
    s.frontier;
  add "  ],\n";
  add "  \"sensitivity\": [\n";
  List.iteri
    (fun i x ->
      add "    %s%s\n" (sensitivity_line x)
        (if i < List.length s.sensitivities - 1 then "," else ""))
    s.sensitivities;
  add "  ]\n";
  add "}\n";
  Buffer.contents b
