(** Cycle-accurate simulator of the Twill runtime architecture
    (thesis Chapter 4, Figure 4.1).

    Pipeline threads run as cooperative fibers with local clocks
    (conservative Kahn-network simulation — all cross-thread interaction
    flows through the queues, semaphores and ordering tokens inserted by
    the DSWP stage, so results are deterministic).  The timing model
    implements the latencies of Chapter 4: single-message-per-cycle buses
    with a priority arbiter, 1/2-cycle queue operations (plus the
    configurable give-to-visible latency, default 2, covering the
    write-update coherency window), 5-cycle processor stream operations,
    per-instruction Microblaze costs for software threads, and
    schedule-derived FSM state counts (with modulo-scheduling initiation
    intervals) for hardware threads.

    Two engines share the timing model: [Interpreted] (the original
    spin-scheduler oracle — record handlers dispatching on channel ids,
    schedule lookups per block exit, blocked fibers re-run every round)
    and [Compiled] (the default — runtime-primitive handlers specialised
    into pre-bound per-channel closures at elaboration, flat
    per-function schedule arrays, ring-buffer queue storage, and a
    scheduler that parks blocked fibers on per-channel wait lists).
    Both engines produce byte-identical {!stats}; {!diff_engines} and
    the rtsim:engines suite enforce it. *)

open Twill_ir.Ir
module Threadgen = Twill_dswp.Threadgen

exception Deadlock of string
(** Raised when no thread can make progress (cannot happen for designs
    produced by {!Twill_dswp.Dswp.run}; property-tested).  The message
    names every unfinished thread and the queue/semaphore it is blocked
    on. *)

exception Out_of_fuel of string
(** A thread exhausted [config.fuel]; the message names the thread. *)

type role = Sw  (** software on the Microblaze *) | Hw  (** FPGA thread *)

type engine =
  | Interpreted  (** spin scheduler + record handlers (the oracle) *)
  | Compiled  (** pre-bound closures + parked-fiber wait lists (default) *)

val engine_name : engine -> string

type thread_spec = {
  tname : string;  (** entry function *)
  trole : role;
  local_memory : bool;
      (** pure-LegUp flow: data in BRAMs, no shared memory bus *)
}

type config = {
  queue_latency : int;
  queue_depth_override : int option;  (** [None]: each queue's own depth *)
  resources : Twill_hls.Schedule.resources;
  modulo : bool;
  backend : Twill_hls.Schedule.backend;
      (** which RTL lowering's block timing (nstates/II) the hardware
          threads replay: the FSM list schedule or the elastic dataflow
          ASAP schedule *)
  bus_contention : bool;
  fuel : int;  (** per-thread instruction budget *)
  engine : engine;
      (** engine used when {!simulate} is not given [?engine] explicitly,
          so sweeps (the DSE subsystem, the bench harness) configure one
          record instead of threading a separate engine argument *)
  mem_banks : int;
      (** shared-memory banks ({!Twill_ir.Memdep.plan}): each bank gets
          its own bus arbiter and hardware threads replay schedules with
          per-bank ordering chains.  1 (the default) keeps the single
          shared memory port and is bit-identical to the unbanked
          simulator. *)
  check_memdep : bool;
      (** debug: observe the evaluated address of every shared-memory
          access and trap ([Failure]) if two accesses the dependence
          oracle declared independent touch the same address within a
          2-cycle window, or a static bank claim is violated.  Pure
          observation — never changes timing. *)
}

val default_config : config

type queue_profile = {
  qp_produces : int;
  qp_consumes : int;
  qp_stall_full : int;  (** producer cycles waiting for a free slot *)
  qp_stall_empty : int;  (** consumer cycles waiting for visibility *)
  qp_bus_waits : int;  (** module-bus arbitration cycles of this queue's ops *)
  qp_peak : int;  (** high-water occupancy *)
  qp_occ_hist : int array;
      (** index = occupancy [0..depth], sampled after every op *)
  qp_prod_bursts : int array;
      (** distribution of back-to-back produce run lengths; index =
          length - 1, last bucket = >= 8 *)
  qp_cons_bursts : int array;
}
(** Per-channel communication profile (occupancy, stalls, burst shapes)
    — the input of the lib/comm optimizer.  Updated with identical
    arithmetic by both engines; {!diff_engines} compares it field by
    field like every other stats component. *)

type stats = {
  ret : int32;  (** the master thread's return value *)
  prints : int32 list;
      (** deterministic merge: the master thread's trace first, then any
          other printing thread in thread-index order *)
  cycles : int;  (** makespan over all threads *)
  thread_finish : (string * int) array;
  thread_busy : (string * int) array;  (** non-waiting cycles per thread *)
  executed : int;
  queue_peaks : int array;  (** high-water occupancy per queue *)
  queue_profiles : queue_profile array;  (** per-channel comm profile *)
  module_bus_waits : int;  (** arbitration wait cycles *)
  memory_bus_waits : int;  (** summed over all banks *)
  mem_bank_grants : int array;
      (** per-bank granted slots (bus occupancy); length = [mem_banks] *)
  mem_bank_waits : int array;
      (** per-bank arbitration wait cycles; length = [mem_banks] *)
}

val simulate :
  ?config:config ->
  ?master:int ->
  ?engine:engine ->
  modul ->
  threads:thread_spec array ->
  queues:Threadgen.queue_info array ->
  nsems:int ->
  unit ->
  stats
(** Runs every thread to completion over one shared memory image and
    returns the timing/behaviour statistics.  [master] selects the thread
    whose return value is the program result (default 0).  [engine]
    defaults to [config.engine] ([Compiled] in {!default_config}).
    @raise Deadlock when no thread can make progress.
    @raise Out_of_fuel when a thread exceeds [config.fuel]. *)

exception Engine_mismatch of string
(** The two engines disagreed on some stats field — a simulator bug. *)

val diff_engines :
  ?config:config ->
  ?master:int ->
  modul ->
  threads:thread_spec array ->
  queues:Threadgen.queue_info array ->
  nsems:int ->
  unit ->
  stats
(** Runs both engines and checks the full {!stats} records for
    equality; returns the compiled engine's stats.
    @raise Engine_mismatch on any difference. *)
