(* Single-message-per-cycle bus arbitration (thesis §4.1).

   The arbiter grants one message per clock; a request at local time [t]
   receives the first free cycle >= t.  Requests are served in simulation
   order, which approximates the priority decoder of the real arbiter
   (the processor wins ties there; contention effects — the 4+n worst
   case of §4.5 — still emerge from slot exclusion).

   The granted-cycle set is a growable byte map indexed by cycle: the
   arbiter sits on the simulator's per-memory-operation hot path, and a
   linear probe over bytes beats hashing every request (occupancy is at
   most one grant per cycle, so probe runs stay short). *)

type t = {
  name : string;
  mutable taken : Bytes.t; (* '\001' = cycle granted *)
  mutable grants : int;
  mutable wait_cycles : int;
}

let create name =
  { name; taken = Bytes.make 4096 '\000'; grants = 0; wait_cycles = 0 }

let ensure (b : t) (n : int) =
  let len = Bytes.length b.taken in
  if n >= len then begin
    let nlen = max (n + 1) (2 * len) in
    let nb = Bytes.make nlen '\000' in
    Bytes.blit b.taken 0 nb 0 len;
    b.taken <- nb
  end

(* First free cycle >= t; reserves it. *)
let reserve (b : t) (t : int) : int =
  let t0 = max 0 t in
  ensure b t0;
  let c = ref t0 in
  while
    !c < Bytes.length b.taken && Bytes.unsafe_get b.taken !c <> '\000'
  do
    incr c
  done;
  ensure b !c;
  Bytes.unsafe_set b.taken !c '\001';
  b.grants <- b.grants + 1;
  b.wait_cycles <- b.wait_cycles + (!c - t0);
  !c
