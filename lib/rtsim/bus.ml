(* Single-message-per-cycle bus arbitration (thesis §4.1).

   The arbiter grants one message per clock; a request at local time [t]
   receives the first free cycle >= t.  Requests are served in simulation
   order, which approximates the priority decoder of the real arbiter
   (the processor wins ties there; contention effects — the 4+n worst
   case of §4.5 — still emerge from slot exclusion).

   The granted-cycle set is a growable byte map indexed by cycle: the
   arbiter sits on the simulator's per-memory-operation hot path, and a
   linear probe over bytes beats hashing every request (occupancy is at
   most one grant per cycle, so probe runs stay short). *)

type t = {
  name : string;
  mutable taken : Bytes.t; (* '\001' = cycle granted *)
  mutable grants : int;
  mutable wait_cycles : int;
  mutable low : int; (* every cycle < low is granted *)
}

let create name =
  { name; taken = Bytes.make 4096 '\000'; grants = 0; wait_cycles = 0; low = 0 }

let ensure (b : t) (n : int) =
  let len = Bytes.length b.taken in
  if n >= len then begin
    let nlen = max (n + 1) (2 * len) in
    let nb = Bytes.make nlen '\000' in
    Bytes.blit b.taken 0 nb 0 len;
    b.taken <- nb
  end

(* First free cycle >= t; reserves it.

   Grants are only ever added, so [low] — the frontier below which every
   cycle is granted — is monotone; a request below it can start probing at
   [low] (the first free cycle >= t equals the first free cycle >= low)
   instead of rescanning the saturated prefix.  Under heavy contention this
   turns the quadratic dense-prefix scan into an amortized O(1) probe. *)
let reserve (b : t) (t : int) : int =
  let t0 = max 0 t in
  let start = if t0 < b.low then b.low else t0 in
  ensure b start;
  (* [taken] cannot change inside the probe loop (growth only happens in
     [ensure]), so hoist the buffer and its length out of it *)
  let buf = b.taken in
  let len = Bytes.length buf in
  let c = ref start in
  while !c < len && Bytes.unsafe_get buf !c <> '\000' do incr c done;
  ensure b !c;
  Bytes.unsafe_set b.taken !c '\001';
  if start = b.low then begin
    (* the scan proved [low, c) granted and we just granted [c]: jump the
       frontier past c and then past the run of grants it now heads *)
    let buf = b.taken in
    let len = Bytes.length buf in
    let l = ref (!c + 1) in
    while !l < len && Bytes.unsafe_get buf !l <> '\000' do incr l done;
    b.low <- !l
  end;
  b.grants <- b.grants + 1;
  b.wait_cycles <- b.wait_cycles + (!c - t0);
  !c
