(** Single-message-per-cycle bus arbitration (thesis §4.1): the arbiter
    grants one message per clock; a request at local time [t] receives the
    first free cycle >= t.  Requests are served in simulation order, which
    approximates the priority decoder of the real arbiter; the contention
    effects (the 4+n worst case of §4.5) emerge from slot exclusion. *)

type t = {
  name : string;
  mutable taken : Bytes.t;  (** granted-cycle byte map, grown on demand *)
  mutable grants : int;
  mutable wait_cycles : int;  (** total grant - request delay *)
  mutable low : int;  (** every cycle < low is granted *)
}

val create : string -> t
val reserve : t -> int -> int
