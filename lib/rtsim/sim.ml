(* Cycle-accurate simulator of the Twill runtime architecture (Chapter 4).

   Threads run as cooperative fibers with local clocks (conservative
   Kahn-network simulation: all cross-thread interaction flows through
   FIFO queues, semaphores and ordering tokens, so values are
   deterministic and local clocks only meet at those synchronisation
   points).  Timing model:

   - Software threads (Microblaze): per-instruction costs from
     [Costmodel.sw_cost]; every runtime-primitive operation costs 5 CPU
     cycles through the stream-based processor interface (§4.5) plus
     module-bus arbitration.
   - Hardware threads: per-block state counts from the LegUp-substitute
     scheduler (ILP inside a block is free, as in the FSM), the modulo
     scheduler's II for pipelined single-block loops, loads/stores over
     the memory bus (1 message/cycle), queue operations with the 1/2-cycle
     minimums of §4.3 plus arbitration.
   - Queues: configurable depth and give->visible latency (default 2,
     which also covers the 2-cycle write-update coherency window of
     §4.5); producers stall on full queues exactly like the size+1
     circular buffer described in §4.3.
   - Semaphores: counting, with FIFO-ish grant times (§4.2). *)

open Effect
open Effect.Deep
open Twill_ir.Ir
module Interp = Twill_ir.Interp
module Costmodel = Twill_ir.Costmodel
module Schedule = Twill_hls.Schedule
module Threadgen = Twill_dswp.Threadgen

type _ Effect.t += Yield : unit Effect.t

exception Deadlock of string

type role = Sw | Hw

type thread_spec = {
  tname : string; (* entry function *)
  trole : role;
  (* pure-LegUp flow: data lives in FPGA BRAMs, no shared memory bus *)
  local_memory : bool;
}

type config = {
  queue_latency : int;
  queue_depth_override : int option; (* None: use each queue's own depth *)
  resources : Schedule.resources;
  modulo : bool;
  bus_contention : bool;
  fuel : int;
}

let default_config =
  {
    queue_latency = 2;
    queue_depth_override = None;
    resources = Schedule.default_resources;
    modulo = true;
    bus_contention = true;
    fuel = 300_000_000;
  }

type queue_state = {
  qinfo : Threadgen.queue_info;
  qdepth : int; (* normalized >= 1 at construction *)
  items : (int32 * int) Queue.t; (* value, visible time *)
  mutable pushed : int;
  mutable popped : int;
  pop_time : int array; (* ring of the last [qdepth] consume times *)
  mutable peak : int;
}

type sem_state = { mutable count : int; mutable free_at : int }

type stats = {
  ret : int32;
  prints : int32 list;
  cycles : int; (* makespan over all threads *)
  thread_finish : (string * int) array;
  thread_busy : (string * int) array;
  executed : int;
  queue_peaks : int array;
  module_bus_waits : int;
  memory_bus_waits : int;
}

let simulate ?(config = default_config) ?(master = 0) (m : modul)
    ~(threads : thread_spec array) ~(queues : Threadgen.queue_info array)
    ~(nsems : int) () : stats =
  let layout, mem = Interp.fresh_memory m in
  let module_bus = Bus.create "module" in
  let memory_bus = Bus.create "memory" in
  let reserve bus t = if config.bus_contention then Bus.reserve bus t else t in
  let qs =
    Array.map
      (fun (qi : Threadgen.queue_info) ->
        let qdepth =
          max 1
            (match config.queue_depth_override with
            | Some d -> d
            | None -> qi.Threadgen.depth)
        in
        {
          qinfo = qi;
          qdepth;
          items = Queue.create ();
          pushed = 0;
          popped = 0;
          pop_time = Array.make qdepth 0;
          peak = 0;
        })
      queues
  in
  let sems = Array.init (max 1 nsems) (fun _ -> { count = 1; free_at = 0 }) in
  let ops = ref 0 in
  let wait_until cond =
    while not (cond ()) do
      perform Yield
    done
  in
  (* schedules for hardware threads: resolved through the process-wide
     cache (shared with area accounting and the driver), memoized by name
     here to avoid the find_func scan and cache lock on the hot path *)
  let schedules : (string, Schedule.t) Hashtbl.t = Hashtbl.create 16 in
  let schedule_of (fname : string) : Schedule.t =
    match Hashtbl.find_opt schedules fname with
    | Some s -> s
    | None ->
        let s =
          Schedule.cached ~res:config.resources ~modulo:config.modulo
            (find_func m fname)
        in
        Hashtbl.replace schedules fname s;
        s
  in
  (* decoded code shared by every thread of this simulation *)
  let ictx = Interp.make_context ~layout m in
  (* per-thread execution contexts *)
  let n = Array.length threads in
  let clocks = Array.make n 0 in
  let busys = Array.make n 0 in
  let results : Interp.result option array = Array.make n None in
  (* Runtime-primitive handlers over an abstract thread clock.  Hardware
     threads keep their clock directly in [clocks.(ti)]; software threads
     run hook-free on the decoded engine's cost tables, so their clock is
     the interpreter's live cycle cell plus a stall offset maintained
     here (runtime-primitive operations are the only points where a
     software thread's clock deviates from its charged cycles). *)
  let make_handlers (get_clock : unit -> int) (set_clock : int -> unit) :
      Interp.handlers =
    (* queue ops carry no extra software overhead here: the 5 interface
       cycles sit in sw_cost; hardware minimums are the +1/+2 below *)
    let queue_overhead = 0 in
    {
      Interp.produce =
        (fun q v ->
          let st = qs.(q) in
          (* block while the queue is full (size+1 buffer semantics) *)
          wait_until (fun () -> st.pushed - st.popped < st.qdepth);
          (* the slot we reuse was freed by the consume [depth] items ago *)
          let slot_free =
            if st.pushed >= st.qdepth then st.pop_time.(st.pushed mod st.qdepth)
            else 0
          in
          set_clock (max (get_clock ()) slot_free);
          let grant = reserve module_bus (get_clock ()) in
          set_clock (grant + 1 + queue_overhead);
          Queue.add (v, grant + config.queue_latency) st.items;
          st.pushed <- st.pushed + 1;
          st.peak <- max st.peak (st.pushed - st.popped);
          incr ops);
      consume =
        (fun q ->
          let st = qs.(q) in
          wait_until (fun () -> st.pushed > st.popped);
          let v, visible = Queue.pop st.items in
          set_clock (max (get_clock ()) visible);
          let grant = reserve module_bus (get_clock ()) in
          set_clock (grant + 1 + queue_overhead);
          st.pop_time.(st.popped mod st.qdepth) <- get_clock ();
          st.popped <- st.popped + 1;
          incr ops;
          v);
      sem_give =
        (fun s k ->
          let st = sems.(s) in
          st.count <- st.count + k;
          st.free_at <- max st.free_at (get_clock ());
          let grant = reserve module_bus (get_clock ()) in
          set_clock (grant + 1);
          incr ops);
      sem_take =
        (fun s k ->
          let st = sems.(s) in
          wait_until (fun () -> st.count >= k);
          st.count <- st.count - k;
          set_clock (max (get_clock ()) st.free_at);
          let grant = reserve module_bus (get_clock ()) in
          set_clock (grant + 2 (* §4.2: lower takes >= 2 cycles *));
          incr ops)
    }
  in
  (* Hardware-thread memory-bus contention, fired by the interpreter on
     every Load/Store at charge time.  Block timing is charged at the
     terminator from the schedule; here only shared-memory-bus waits are
     added.  The request is issued at the op's scheduled slot within the
     block, so a thread never contends with its own schedule. *)
  let make_mem_hook (ti : int) (spec : thread_spec) :
      (func -> inst -> unit) option =
    if spec.local_memory then None
    else
      let cur = ref None in
      let sched_of (f : func) =
        match !cur with
        | Some (n, s) when n == f.name -> s
        | _ ->
            let s = schedule_of f.name in
            cur := Some (f.name, s);
            s
      in
      Some
        (fun f i ->
          let s = sched_of f in
          let sa = s.Schedule.start_arr in
          let slot =
            if i.id >= 0 && i.id < Array.length sa && sa.(i.id) >= 0 then
              sa.(i.id)
            else 0
          in
          let request = clocks.(ti) + slot in
          let grant = reserve memory_bus request in
          if grant > request then
            clocks.(ti) <- clocks.(ti) + (grant - request))
  in
  let make_term_cost (ti : int) : func -> block -> int =
    let last = ref ("", -1) in
    let cur = ref None in
    let sched_of (f : func) =
      match !cur with
      | Some (n, s) when n == f.name -> s
      | _ ->
          let s = schedule_of f.name in
          cur := Some (f.name, s);
          s
    in
    fun f b ->
      let s = sched_of f in
      let pipelined = s.Schedule.ii.(b.bid) > 0 && !last = (f.name, b.bid) in
      let c =
        if pipelined then s.Schedule.ii.(b.bid) else s.Schedule.nstates.(b.bid)
      in
      last := (f.name, b.bid);
      clocks.(ti) <- clocks.(ti) + c;
      busys.(ti) <- busys.(ti) + c;
      c
  in
  let finished = ref 0 in
  if
    (* Single software thread, no cross-thread runtime state: the
       simulation degenerates to one interpreter run whose clock equals
       the interpreter's cycle count (the Sw hooks add exactly the default
       Microblaze costs and nothing can stall), so skip the fiber
       machinery and run on the pre-computed cost tables. *)
    n = 1
    && threads.(0).trole = Sw
    && Array.length queues = 0
    && nsems = 0
  then begin
    let r =
      Interp.run_shared ~fuel:config.fuel ~layout ~mem ~charge_cycles:true
        ~ctx:ictx m ~entry:threads.(0).tname ~args:[||]
    in
    clocks.(0) <- r.Interp.cycles;
    busys.(0) <- r.Interp.cycles;
    results.(0) <- Some r;
    incr finished
  end
  else begin
    (* cooperative scheduler (as in Parexec) *)
    let runq : (unit -> unit) Queue.t = Queue.create () in
    let start_fiber (body : unit -> unit) () =
      match_with body ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      Queue.add (fun () -> continue k ()) runq)
              | _ -> None);
        }
    in
    Array.iteri
      (fun ti spec ->
        Queue.add
          (start_fiber (fun () ->
               match spec.trole with
               | Sw ->
                   (* hook-free: the decoded engine charges Microblaze
                      costs from its tables into [cell]; [stall] holds the
                      extra wall-clock the runtime primitives imposed *)
                   let cell = ref 0 and stall = ref 0 in
                   let get () = !cell + !stall in
                   let set c = stall := c - !cell in
                   let r =
                     Interp.run_shared ~fuel:config.fuel ~layout ~mem
                       ~handlers:(make_handlers get set) ~charge_cycles:true
                       ~ctx:ictx ~cycles_cell:cell m ~entry:spec.tname
                       ~args:[||]
                   in
                   clocks.(ti) <- !cell + !stall;
                   busys.(ti) <- !cell;
                   results.(ti) <- Some r;
                   incr finished
               | Hw ->
                   let get () = clocks.(ti) in
                   let set c = clocks.(ti) <- c in
                   let r =
                     Interp.run_shared ~fuel:config.fuel ~layout ~mem
                       ~handlers:(make_handlers get set)
                       ~cost:Interp.zero_cost
                       ~term_cost:(make_term_cost ti) ~charge_cycles:true
                       ~ctx:ictx ?mem_hook:(make_mem_hook ti spec) m
                       ~entry:spec.tname ~args:[||]
                   in
                   results.(ti) <- Some r;
                   incr finished))
          runq)
      threads;
    while not (Queue.is_empty runq) do
      let k = Queue.length runq in
      let before = !ops in
      let done_before = !finished in
      for _ = 1 to k do
        (Queue.pop runq) ()
      done;
      if (not (Queue.is_empty runq)) && !ops = before && !finished = done_before
      then
        raise
          (Deadlock (Printf.sprintf "%d threads blocked" (Queue.length runq)))
    done
  end;
  let ret =
    match results.(master) with
    | Some r -> r.Interp.ret
    | None -> raise (Deadlock "master thread did not finish")
  in
  let prints =
    let printing =
      Array.to_list results
      |> List.filter_map (function
           | Some r when r.Interp.prints <> [] -> Some r.Interp.prints
           | _ -> None)
    in
    match printing with
    | [] -> []
    | [ p ] -> p
    | _ -> failwith "rtsim: prints scattered across threads"
  in
  let executed =
    Array.fold_left
      (fun acc r -> match r with Some r -> acc + r.Interp.executed | None -> acc)
      0 results
  in
  {
    ret;
    prints;
    cycles = Array.fold_left max 0 clocks;
    thread_finish = Array.mapi (fun i spec -> (spec.tname, clocks.(i))) threads;
    thread_busy = Array.mapi (fun i spec -> (spec.tname, busys.(i))) threads;
    executed;
    queue_peaks = Array.map (fun q -> q.peak) qs;
    module_bus_waits = module_bus.Bus.wait_cycles;
    memory_bus_waits = memory_bus.Bus.wait_cycles;
  }
