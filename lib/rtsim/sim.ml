(* Cycle-accurate simulator of the Twill runtime architecture (Chapter 4).

   Threads run as cooperative fibers with local clocks (conservative
   Kahn-network simulation: all cross-thread interaction flows through
   FIFO queues, semaphores and ordering tokens, so values are
   deterministic and local clocks only meet at those synchronisation
   points).  Timing model:

   - Software threads (Microblaze): per-instruction costs from
     [Costmodel.sw_cost]; every runtime-primitive operation costs 5 CPU
     cycles through the stream-based processor interface (§4.5) plus
     module-bus arbitration.
   - Hardware threads: per-block state counts from the LegUp-substitute
     scheduler (ILP inside a block is free, as in the FSM), the modulo
     scheduler's II for pipelined single-block loops, loads/stores over
     the memory bus (1 message/cycle), queue operations with the 1/2-cycle
     minimums of §4.3 plus arbitration.
   - Queues: configurable depth and give->visible latency (default 2,
     which also covers the 2-cycle write-update coherency window of
     §4.5); producers stall on full queues exactly like the size+1
     circular buffer described in §4.3.
   - Semaphores: counting, with FIFO-ish grant times (§4.2).

   Two execution engines share this timing model (the same discipline as
   the interpreter's Tree/Decoded pair and vsim's engine family):

   - [Interpreted] (the oracle): the original spin scheduler.  Handlers
     are one record per thread dispatching on the channel id, hardware
     terminator costs resolve their schedule through a name-keyed
     hashtable, and every blocked fiber is resumed once per scheduler
     round just to re-check its wait condition.
   - [Compiled] (default): runtime-primitive handlers are specialised at
     elaboration into one closure per (thread x channel) — queue state,
     ring buffer, bus, latency and the thread's clock accessors are
     pre-bound, and the interpreter dispatches through
     {!Interp.fast_handlers} arrays with no id argument.  Queue storage
     is a preallocated ring (no per-item allocation).  Hardware
     terminator and memory-bus hooks resolve [nstates]/[ii]/[start_arr]
     into flat per-function arrays at elaboration (physical-equality
     memo, no hashtable and no tuple allocation per block exit).  The
     scheduler parks blocked fibers on per-queue/per-semaphore wait
     lists and only re-runs them when a producer/consumer/give touches
     the channel they wait on.

   The compiled scheduler cycles a ring of thread slots in index order
   and runs every ready thread at its turn; because the interpreted
   run queue is a FIFO that re-enqueues each fiber after every yield,
   both engines resume productive work in the same global order, so bus
   arbitration (which grants in call order) and therefore every stats
   field is byte-identical across engines — [diff_engines] enforces
   exactly that, and the rtsim:engines suite plus the fuzz oracle keep
   it checked. *)

open Effect
open Effect.Deep
open Twill_ir.Ir
module Interp = Twill_ir.Interp
module Costmodel = Twill_ir.Costmodel
module Memdep = Twill_ir.Memdep
module Schedule = Twill_hls.Schedule
module Threadgen = Twill_dswp.Threadgen

type _ Effect.t += Yield : unit Effect.t

exception Deadlock of string
exception Out_of_fuel of string

type role = Sw | Hw

type engine = Interpreted | Compiled

let engine_name = function Interpreted -> "interpreted" | Compiled -> "compiled"

type thread_spec = {
  tname : string; (* entry function *)
  trole : role;
  (* pure-LegUp flow: data lives in FPGA BRAMs, no shared memory bus *)
  local_memory : bool;
}

type config = {
  queue_latency : int;
  queue_depth_override : int option; (* None: use each queue's own depth *)
  resources : Schedule.resources;
  modulo : bool;
  backend : Schedule.backend; (* RTL lowering whose timing hw threads replay *)
  bus_contention : bool;
  fuel : int;
  engine : engine; (* default engine; [simulate ?engine] overrides *)
  (* memory banks (Memdep.plan): each bank gets its own bus arbiter, and
     hardware threads replay schedules with per-bank ordering chains.
     1 = the single shared memory port (identical to pre-banking) *)
  mem_banks : int;
  (* debug: trap when two accesses the dependence analysis declared
     independent touch the same address within a cycle window *)
  check_memdep : bool;
}

let default_config =
  {
    queue_latency = 2;
    queue_depth_override = None;
    resources = Schedule.default_resources;
    modulo = true;
    backend = Schedule.Fsm;
    bus_contention = true;
    fuel = 300_000_000;
    engine = Compiled;
    mem_banks = 1;
    check_memdep = false;
  }

(* Per-channel communication profile, the input of the lib/comm
   optimizer.  Counters are updated with identical arithmetic by both
   engines' handlers (the same contract as every other stats field;
   [stats_mismatch] compares them, so the rtsim:engines suite enforces
   byte-identity).  Histograms are event-sampled: occupancy is recorded
   after every produce (post-push) and consume (post-pop), burst runs
   count maximal chains of operations whose start clock equals the
   previous operation's end clock on the same queue (i.e. back-to-back
   on the producing/consuming thread). *)
type queue_profile = {
  qp_produces : int;
  qp_consumes : int;
  qp_stall_full : int; (* producer cycles waiting for a free slot *)
  qp_stall_empty : int; (* consumer cycles waiting for visibility *)
  qp_bus_waits : int; (* module-bus arbitration cycles of this queue's ops *)
  qp_peak : int; (* high-water occupancy *)
  qp_occ_hist : int array; (* index = occupancy 0..depth, event-sampled *)
  qp_prod_bursts : int array; (* index = run length - 1, last = >= 8 *)
  qp_cons_bursts : int array;
}

type stats = {
  ret : int32;
  prints : int32 list;
  cycles : int; (* makespan over all threads *)
  thread_finish : (string * int) array;
  thread_busy : (string * int) array;
  executed : int;
  queue_peaks : int array;
  queue_profiles : queue_profile array;
  module_bus_waits : int;
  memory_bus_waits : int; (* summed over banks *)
  (* per-bank memory-bus profile: granted slots (occupancy) and
     arbitration wait cycles.  Length = mem_banks; [|_|] when unbanked.
     Updated with identical arithmetic by both engines —
     [stats_mismatch] compares them byte-for-byte. *)
  mem_bank_grants : int array;
  mem_bank_waits : int array;
}

(* What a parked thread is waiting on — carried into the [Deadlock]
   message so a stuck simulation names every blocked thread's channel. *)
type blocked_on =
  | Not_blocked
  | On_queue_full of int
  | On_queue_empty of int
  | On_sem of int * int (* semaphore id, count needed *)

let blocked_on_to_string = function
  | Not_blocked -> "runnable"
  | On_queue_full q -> Printf.sprintf "queue %d full" q
  | On_queue_empty q -> Printf.sprintf "queue %d empty" q
  | On_sem (s, k) -> Printf.sprintf "semaphore %d (needs %d)" s k

(* One deadlock message format shared by both engines: every unfinished
   thread with the channel it blocks on. *)
let deadlock_message (threads : thread_spec array) (finished : bool array)
    (blocked : blocked_on array) : string =
  let parts = ref [] in
  for ti = Array.length threads - 1 downto 0 do
    if not finished.(ti) then
      parts :=
        Printf.sprintf "t%d %s: %s" ti threads.(ti).tname
          (blocked_on_to_string blocked.(ti))
        :: !parts
  done;
  Printf.sprintf "%d thread(s) blocked (%s)"
    (List.length !parts)
    (String.concat "; " !parts)

(* Deterministic cross-thread print merge: the master thread's trace
   first (it carries the program's observable output in every design the
   extractor produces — the print chain is pinned into one SCC), then
   any other printing thread in thread-index order.  When exactly one
   thread prints, this is that thread's trace verbatim, which is the
   program order. *)
let merge_prints ~(master : int) (results : Interp.result option array) :
    int32 list =
  let prints_of ti =
    match results.(ti) with Some r -> r.Interp.prints | None -> []
  in
  let rest = ref [] in
  for ti = Array.length results - 1 downto 0 do
    if ti <> master then
      match prints_of ti with [] -> () | p -> rest := p :: !rest
  done;
  prints_of master @ List.concat !rest

(* --- shared per-simulation state ----------------------------------------- *)

type queue_state = {
  qdepth : int; (* normalized >= 1 at construction *)
  (* interpreted oracle: in-flight items as (value, visible time),
     stored in the straightforward FIFO the original engine used *)
  items : (int32 * int) Queue.t;
  (* compiled engine: the same in-flight window as ring buffers indexed
     by counter mod depth — value and visible time of the [qdepth]
     in-flight items, no per-item allocation *)
  ring_val : int32 array;
  ring_vis : int array;
  (* both engines: consume times of the last [qdepth] pops (the slot a
     producer reuses was freed by the consume [depth] items ago) *)
  pop_time : int array;
  mutable pushed : int;
  mutable popped : int;
  mutable peak : int;
  (* compiled engine: threads parked on this queue *)
  wl_full : int list ref; (* producers waiting for space *)
  wl_empty : int list ref; (* consumers waiting for data *)
  (* burst coalescing (lib/comm): a produce whose start clock equals the
     previous produce's end clock rides the same multi-word bus
     transaction and skips arbitration *)
  allow_burst : bool;
  (* profiling counters; see [queue_profile] *)
  mutable p_produces : int;
  mutable p_consumes : int;
  mutable p_stall_full : int;
  mutable p_stall_empty : int;
  mutable p_bus_waits : int;
  occ_hist : int array;
  prod_bursts : int array;
  cons_bursts : int array;
  mutable p_run : int; (* current produce burst run; 0 = none yet *)
  mutable p_last_end : int; (* end clock of the last produce; -1 = none *)
  mutable c_run : int;
  mutable c_last_end : int;
}

type sem_state = {
  mutable count : int;
  mutable free_at : int;
  wl_sem : int list ref; (* takers waiting for count *)
}

(* Compiled-engine arbitration: [Bus.reserve] with the common case —
   first probe free, map already big enough — peeled into the caller.
   The grant sequence is identical; the fallback handles collisions and
   growth. *)
let[@inline] bus_grab (bus : Bus.t) (t : int) : int =
  let buf = bus.Bus.taken in
  if t < Bytes.length buf && Bytes.unsafe_get buf t = '\000' then begin
    Bytes.unsafe_set buf t '\001';
    bus.Bus.grants <- bus.Bus.grants + 1;
    if t = bus.Bus.low then bus.Bus.low <- t + 1;
    t
  end
  else Bus.reserve bus t

let make_queues (config : config) (queues : Threadgen.queue_info array) :
    queue_state array =
  Array.map
    (fun (qi : Threadgen.queue_info) ->
      let qdepth =
        max 1
          (match config.queue_depth_override with
          | Some d -> d
          | None -> qi.Threadgen.depth)
      in
      {
        qdepth;
        items = Queue.create ();
        ring_val = Array.make qdepth 0l;
        ring_vis = Array.make qdepth 0;
        pop_time = Array.make qdepth 0;
        pushed = 0;
        popped = 0;
        peak = 0;
        wl_full = ref [];
        wl_empty = ref [];
        allow_burst = qi.Threadgen.burst;
        p_produces = 0;
        p_consumes = 0;
        p_stall_full = 0;
        p_stall_empty = 0;
        p_bus_waits = 0;
        occ_hist = Array.make (qdepth + 1) 0;
        prod_bursts = Array.make 8 0;
        cons_bursts = Array.make 8 0;
        p_run = 0;
        p_last_end = -1;
        c_run = 0;
        c_last_end = -1;
      })
    queues

(* --- per-channel profiling ------------------------------------------------ *)

(* Both engines call these with the same (clk0, clk, grant) triple —
   thread clock at op entry, after the queue-state wait (slot-free /
   visibility), and after arbitration — so the counters are
   byte-identical by the same argument as every other stats field.
   Called after the push/pop counters move, so the sampled occupancy is
   the post-op one. *)

let[@inline] burst_bucket (n : int) : int = if n >= 8 then 7 else n - 1

let[@inline] prof_produce (st : queue_state) ~clk0 ~clk ~grant =
  st.p_produces <- st.p_produces + 1;
  st.p_stall_full <- st.p_stall_full + (clk - clk0);
  st.p_bus_waits <- st.p_bus_waits + (grant - clk);
  let occ = st.pushed - st.popped in
  st.occ_hist.(occ) <- st.occ_hist.(occ) + 1;
  (if clk = st.p_last_end then st.p_run <- st.p_run + 1
   else begin
     (if st.p_run > 0 then
        let i = burst_bucket st.p_run in
        st.prod_bursts.(i) <- st.prod_bursts.(i) + 1);
     st.p_run <- 1
   end);
  st.p_last_end <- grant + 1

let[@inline] prof_consume (st : queue_state) ~clk0 ~clk ~grant =
  st.p_consumes <- st.p_consumes + 1;
  st.p_stall_empty <- st.p_stall_empty + (clk - clk0);
  st.p_bus_waits <- st.p_bus_waits + (grant - clk);
  let occ = st.pushed - st.popped in
  st.occ_hist.(occ) <- st.occ_hist.(occ) + 1;
  (if clk = st.c_last_end then st.c_run <- st.c_run + 1
   else begin
     (if st.c_run > 0 then
        let i = burst_bucket st.c_run in
        st.cons_bursts.(i) <- st.cons_bursts.(i) + 1);
     st.c_run <- 1
   end);
  st.c_last_end <- grant + 1

(* Close the open burst runs (end of simulation) and snapshot. *)
let profile_of (st : queue_state) : queue_profile =
  (if st.p_run > 0 then
     let i = burst_bucket st.p_run in
     st.prod_bursts.(i) <- st.prod_bursts.(i) + 1);
  st.p_run <- 0;
  (if st.c_run > 0 then
     let i = burst_bucket st.c_run in
     st.cons_bursts.(i) <- st.cons_bursts.(i) + 1);
  st.c_run <- 0;
  {
    qp_produces = st.p_produces;
    qp_consumes = st.p_consumes;
    qp_stall_full = st.p_stall_full;
    qp_stall_empty = st.p_stall_empty;
    qp_bus_waits = st.p_bus_waits;
    qp_peak = st.peak;
    qp_occ_hist = Array.copy st.occ_hist;
    qp_prod_bursts = Array.copy st.prod_bursts;
    qp_cons_bursts = Array.copy st.cons_bursts;
  }

let simulate ?(config = default_config) ?(master = 0) ?engine
    (m : modul) ~(threads : thread_spec array)
    ~(queues : Threadgen.queue_info array) ~(nsems : int) () : stats =
  let engine = match engine with Some e -> e | None -> config.engine in
  let layout, mem = Interp.fresh_memory m in
  let module_bus = Bus.create "module" in
  let nbanks = max 1 config.mem_banks in
  (* one arbiter per bank; bank 0 keeps the historic "memory" label so
     the unbanked configuration is bit-identical to the single-bus code *)
  let mem_buses =
    Array.init nbanks (fun k ->
        Bus.create (if k = 0 then "memory" else Printf.sprintf "memory.%d" k))
  in
  let memory_bus = mem_buses.(0) in
  let reserve bus t = if config.bus_contention then Bus.reserve bus t else t in
  (* memory disambiguation: built on demand (banked sim or checker on).
     The plan is a pure function of (module, nbanks), so it is safe to
     key caches on the bank count alone. *)
  let banking_plan =
    lazy
      (let md = Memdep.build m in
       Memdep.plan md layout ~banks:nbanks)
  in
  let bank_tables : (string, int option array) Hashtbl.t = Hashtbl.create 16 in
  let bank_table_of (f : func) : int option array =
    match Hashtbl.find_opt bank_tables f.name with
    | Some t -> t
    | None ->
        let t = Memdep.bank_table (Lazy.force banking_plan) f in
        Hashtbl.replace bank_tables f.name t;
        t
  in
  (* static bank of an access, None = may touch any bank *)
  let bank_of_access (f : func) (i : inst) : int option =
    let tbl = bank_table_of f in
    if i.id >= 0 && i.id < Array.length tbl then tbl.(i.id) else None
  in
  let qs = make_queues config queues in
  let sems =
    Array.init (max 1 nsems) (fun _ ->
        { count = 1; free_at = 0; wl_sem = ref [] })
  in
  (* schedules for hardware threads: resolved through the process-wide
     cache (shared with area accounting and the driver), memoized by name
     here to avoid the find_func scan and cache lock on the hot path *)
  let schedules : (string, Schedule.t) Hashtbl.t = Hashtbl.create 16 in
  let schedule_of (fname : string) : Schedule.t =
    match Hashtbl.find_opt schedules fname with
    | Some s -> s
    | None ->
        let f = find_func m fname in
        let banking =
          if nbanks = 1 then None
          else
            let tbl = bank_table_of f in
            Some
              {
                Schedule.nbanks;
                bank_of_id =
                  (fun id ->
                    if id >= 0 && id < Array.length tbl then tbl.(id) else None);
              }
        in
        let s =
          Schedule.cached ~res:config.resources ~modulo:config.modulo
            ~backend:config.backend ?banking f
        in
        Hashtbl.replace schedules fname s;
        s
  in
  (* decoded code shared by every thread of this simulation *)
  let ictx = Interp.make_context ~layout m in
  (* per-thread execution contexts *)
  let n = Array.length threads in
  let clocks = Array.make n 0 in
  let busys = Array.make n 0 in
  let results : Interp.result option array = Array.make n None in
  let finished = Array.make n false in
  let blocked = Array.make n Not_blocked in
  let nfinished = ref 0 in
  let finish ti r =
    results.(ti) <- Some r;
    finished.(ti) <- true;
    incr nfinished
  in
  let out_of_fuel ti =
    Out_of_fuel
      (Printf.sprintf "thread t%d %s exhausted the %d-instruction budget" ti
         threads.(ti).tname config.fuel)
  in
  (* Runtime alias checker ([config.check_memdep]): fed the evaluated
     word address of every shared-memory access through the
     interpreter's [mem_trace] hook.  Traps when (a) an access with a
     static bank claim lands in a different bank, or (b) two accesses
     the oracle declared independent touch the same address within a
     2-cycle window — exactly the situations where banked scheduling
     or arbitration could have reordered a real dependence.  The hook
     is pure observation: it never touches clocks or buses, so enabling
     it cannot change timing in either engine. *)
  let mem_trace_of : int -> thread_spec -> (func -> inst -> int32 -> unit) option
      =
    if not config.check_memdep then fun _ _ -> None
    else begin
      let plan = Lazy.force banking_plan in
      let md = plan.Memdep.pt in
      let wsize = 64 in
      let window : (func * inst * int32 * int) option array =
        Array.make wsize None
      in
      let wpos = ref 0 in
      fun ti spec ->
        if spec.local_memory then None
        else
          Some
            (fun f i addr ->
              (match bank_of_access f i with
              | Some b when Memdep.bank_of_addr plan addr <> b ->
                  failwith
                    (Printf.sprintf
                       "check_memdep: %s#%d claims bank %d but address %ld is \
                        in bank %d"
                       f.name i.id b addr
                       (Memdep.bank_of_addr plan addr))
              | _ -> ());
              let t = clocks.(ti) in
              Array.iter
                (function
                  | Some (f', (i' : inst), addr', t')
                    when addr' = addr
                         && abs (t - t') <= 2
                         && Memdep.independent md f i f' i' ->
                      failwith
                        (Printf.sprintf
                           "check_memdep: %s#%d and %s#%d were declared \
                            independent but both touched address %ld (cycles \
                            %d and %d)"
                           f.name i.id f'.name i'.id addr t t')
                  | _ -> ())
                window;
              window.(!wpos) <- Some (f, i, addr, t);
              wpos := (!wpos + 1) mod wsize)
    end
  in
  if
    (* Single software thread, no cross-thread runtime state: the
       simulation degenerates to one interpreter run whose clock equals
       the interpreter's cycle count (the Sw hooks add exactly the default
       Microblaze costs and nothing can stall), so skip the fiber
       machinery and run on the pre-computed cost tables. *)
    n = 1
    && threads.(0).trole = Sw
    && Array.length queues = 0
    && nsems = 0
  then begin
    let r =
      try
        Interp.run_shared ~fuel:config.fuel ~layout ~mem ~charge_cycles:true
          ~ctx:ictx m ~entry:threads.(0).tname ~args:[||]
      with Interp.Out_of_fuel -> raise (out_of_fuel 0)
    in
    clocks.(0) <- r.Interp.cycles;
    busys.(0) <- r.Interp.cycles;
    finish 0 r
  end
  else begin
    (* Hardware-thread memory-bus contention, fired by the interpreter on
       every Load/Store at charge time.  Block timing is charged at the
       terminator from the schedule; here only shared-memory-bus waits are
       added.  The request is issued at the op's scheduled slot within the
       block, so a thread never contends with its own schedule. *)
    let make_mem_hook (ti : int) (spec : thread_spec) :
        (func -> inst -> unit) option =
      if spec.local_memory then None
      else
        let cur = ref None in
        let sched_of (f : func) =
          match !cur with
          | Some (n, s) when n == f.name -> s
          | _ ->
              let s = schedule_of f.name in
              cur := Some (f.name, s);
              s
        in
        Some
          (fun f i ->
            let s = sched_of f in
            let sa = s.Schedule.start_arr in
            let slot =
              if i.id >= 0 && i.id < Array.length sa && sa.(i.id) >= 0 then
                sa.(i.id)
              else 0
            in
            let request = clocks.(ti) + slot in
            let grant =
              if nbanks = 1 then reserve memory_bus request
              else
                match bank_of_access f i with
                | Some b -> reserve mem_buses.(b) request
                | None ->
                    (* may touch any bank: occupy a slot on every bank,
                       stall until the last grant (banks in index order —
                       the compiled engine must match exactly) *)
                    let g = ref request in
                    for k = 0 to nbanks - 1 do
                      let gk = reserve mem_buses.(k) request in
                      if gk > !g then g := gk
                    done;
                    !g
            in
            if grant > request then
              clocks.(ti) <- clocks.(ti) + (grant - request))
    in
    match engine with
    | Interpreted ->
        (* ---- the interpreted oracle: spin scheduler, id-dispatching
           handlers, schedule lookups on the hot path ---- *)
        let ops = ref 0 in
        let wait_until ti why cond =
          while not (cond ()) do
            blocked.(ti) <- why;
            perform Yield
          done;
          blocked.(ti) <- Not_blocked
        in
        (* Runtime-primitive handlers over an abstract thread clock.
           Hardware threads keep their clock directly in [clocks.(ti)];
           software threads run hook-free on the decoded engine's cost
           tables, so their clock is the interpreter's live cycle cell
           plus a stall offset maintained here (runtime-primitive
           operations are the only points where a software thread's clock
           deviates from its charged cycles). *)
        let make_handlers (ti : int) (get_clock : unit -> int)
            (set_clock : int -> unit) : Interp.handlers =
          (* queue ops carry no extra software overhead here: the 5
             interface cycles sit in sw_cost; hardware minimums are the
             +1/+2 below *)
          let queue_overhead = 0 in
          {
            Interp.produce =
              (fun q v ->
                let st = qs.(q) in
                (* block while the queue is full (size+1 buffer semantics) *)
                wait_until ti (On_queue_full q) (fun () ->
                    st.pushed - st.popped < st.qdepth);
                (* the slot we reuse was freed by the consume [depth]
                   items ago *)
                let slot_free =
                  if st.pushed >= st.qdepth then
                    st.pop_time.(st.pushed mod st.qdepth)
                  else 0
                in
                let clk0 = get_clock () in
                let clk = if clk0 < slot_free then slot_free else clk0 in
                (* burst coalescing: a back-to-back produce rides the
                   previous one's bus transaction, no new arbitration *)
                let grant =
                  if st.allow_burst && clk = st.p_last_end then clk
                  else reserve module_bus clk
                in
                set_clock (grant + 1 + queue_overhead);
                Queue.add (v, grant + config.queue_latency) st.items;
                st.pushed <- st.pushed + 1;
                st.peak <- max st.peak (st.pushed - st.popped);
                prof_produce st ~clk0 ~clk ~grant;
                incr ops);
            consume =
              (fun q ->
                let st = qs.(q) in
                wait_until ti (On_queue_empty q) (fun () ->
                    st.pushed > st.popped);
                let v, visible = Queue.pop st.items in
                let clk0 = get_clock () in
                let clk = if clk0 < visible then visible else clk0 in
                let grant = reserve module_bus clk in
                set_clock (grant + 1 + queue_overhead);
                st.pop_time.(st.popped mod st.qdepth) <- get_clock ();
                st.popped <- st.popped + 1;
                prof_consume st ~clk0 ~clk ~grant;
                incr ops;
                v);
            sem_give =
              (fun s k ->
                let st = sems.(s) in
                st.count <- st.count + k;
                st.free_at <- max st.free_at (get_clock ());
                let grant = reserve module_bus (get_clock ()) in
                set_clock (grant + 1);
                incr ops);
            sem_take =
              (fun s k ->
                let st = sems.(s) in
                wait_until ti (On_sem (s, k)) (fun () -> st.count >= k);
                st.count <- st.count - k;
                set_clock (max (get_clock ()) st.free_at);
                let grant = reserve module_bus (get_clock ()) in
                set_clock (grant + 2 (* §4.2: lower takes >= 2 cycles *));
                incr ops)
          }
        in
        let make_term_cost (ti : int) : func -> block -> int =
          let last = ref ("", -1) in
          let cur = ref None in
          let sched_of (f : func) =
            match !cur with
            | Some (n, s) when n == f.name -> s
            | _ ->
                let s = schedule_of f.name in
                cur := Some (f.name, s);
                s
          in
          fun f b ->
            let s = sched_of f in
            let pipelined =
              s.Schedule.ii.(b.bid) > 0 && !last = (f.name, b.bid)
            in
            let c =
              if pipelined then s.Schedule.ii.(b.bid)
              else s.Schedule.nstates.(b.bid)
            in
            last := (f.name, b.bid);
            clocks.(ti) <- clocks.(ti) + c;
            busys.(ti) <- busys.(ti) + c;
            c
        in
        (* cooperative scheduler (as in Parexec) *)
        let runq : (unit -> unit) Queue.t = Queue.create () in
        let start_fiber (body : unit -> unit) () =
          match_with body ()
            {
              retc = (fun () -> ());
              exnc = (fun e -> raise e);
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Yield ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          Queue.add (fun () -> continue k ()) runq)
                  | _ -> None);
            }
        in
        Array.iteri
          (fun ti spec ->
            Queue.add
              (start_fiber (fun () ->
                   match spec.trole with
                   | Sw ->
                       (* hook-free: the decoded engine charges Microblaze
                          costs from its tables into [cell]; [stall] holds
                          the extra wall-clock the runtime primitives
                          imposed *)
                       let cell = ref 0 and stall = ref 0 in
                       let get () = !cell + !stall in
                       let set c = stall := c - !cell in
                       let r =
                         try
                           Interp.run_shared ~fuel:config.fuel ~layout ~mem
                             ~handlers:(make_handlers ti get set)
                             ~charge_cycles:true ~ctx:ictx ~cycles_cell:cell
                             ?mem_trace:(mem_trace_of ti spec) m
                             ~entry:spec.tname ~args:[||]
                         with Interp.Out_of_fuel -> raise (out_of_fuel ti)
                       in
                       clocks.(ti) <- !cell + !stall;
                       busys.(ti) <- !cell;
                       finish ti r
                   | Hw ->
                       let get () = clocks.(ti) in
                       let set c = clocks.(ti) <- c in
                       let r =
                         try
                           Interp.run_shared ~fuel:config.fuel ~layout ~mem
                             ~handlers:(make_handlers ti get set)
                             ~cost:Interp.zero_cost
                             ~term_cost:(make_term_cost ti) ~charge_cycles:true
                             ~ctx:ictx ?mem_hook:(make_mem_hook ti spec)
                             ?mem_trace:(mem_trace_of ti spec) m
                             ~entry:spec.tname ~args:[||]
                         with Interp.Out_of_fuel -> raise (out_of_fuel ti)
                       in
                       finish ti r))
              runq)
          threads;
        while not (Queue.is_empty runq) do
          let k = Queue.length runq in
          let before = !ops in
          let done_before = !nfinished in
          for _ = 1 to k do
            (Queue.pop runq) ()
          done;
          if
            (not (Queue.is_empty runq))
            && !ops = before
            && !nfinished = done_before
          then raise (Deadlock (deadlock_message threads finished blocked))
        done
    | Compiled ->
        (* ---- the compiled engine: per-channel pre-bound closures and a
           parked-fiber scheduler over per-channel wait lists ---- *)
        let nq = Array.length queues in
        let nsems_arr = Array.length sems in
        (* thread ring: [pending.(ti)] resumes the thread (fiber start or
           parked continuation), [ready] gates its ring turn *)
        let pending : (unit -> unit) option array = Array.make n None in
        let ready = Array.make n true in
        let running = ref 0 in
        let module E = struct
          type _ Effect.t +=
            | Park : blocked_on * int list ref -> unit Effect.t
        end in
        let wake (wl : int list ref) =
          match !wl with
          | [] -> ()
          | l ->
              wl := [];
              List.iter
                (fun ti ->
                  ready.(ti) <- true;
                  blocked.(ti) <- Not_blocked)
                l
        in
        (* Park until [cond] holds, registering on [wl]; re-checks on
           every wake (another thread may have consumed the event). *)
        let wait_park why (wl : int list ref) cond =
          while not (cond ()) do
            perform (E.Park (why, wl))
          done
        in
        (* Bus arbitration resolved at elaboration into a direct
           [bus_grab] fast path ([mb_on] is an immutable local, so the
           branch predicts perfectly; contention off skips arbitration
           entirely). *)
        let mb_on = config.bus_contention in
        (* Runtime-primitive handlers, specialised per (role x channel x
           config): queue ring, bus, latency and the thread clock are
           pre-bound, so an op neither indexes the channel table nor
           calls through an abstract get/set clock pair.  A software
           thread's clock is the interpreter's live cycle cell plus a
           stall offset; [cell] cannot advance during one handler call
           (no instructions retire mid-primitive), so the get/set
           algebra folds into plain arithmetic on a snapshot.  A
           hardware thread's clock lives in [clocks.(ti)].  The
           arithmetic is identical to the interpreted handlers —
           byte-identical stats are the contract. *)
        let make_fast_sw (cell : int ref) (stall : int ref) :
            Interp.fast_handlers =
          let produce_q (st : queue_state) q =
            let depth = st.qdepth in
            let lat = config.queue_latency in
            let wl_empty = st.wl_empty and wl_full = st.wl_full in
            fun v ->
              if st.pushed - st.popped >= depth then
                wait_park (On_queue_full q) wl_full (fun () ->
                    st.pushed - st.popped < depth);
              let slot = st.pushed mod depth in
              let slot_free =
                if st.pushed >= depth then Array.unsafe_get st.pop_time slot
                else 0
              in
              let cell0 = !cell in
              let clk0 = cell0 + !stall in
              let clk = if clk0 < slot_free then slot_free else clk0 in
              let grant =
                if st.allow_burst && clk = st.p_last_end then clk
                else if mb_on then bus_grab module_bus clk
                else clk
              in
              stall := grant + 1 - cell0;
              Array.unsafe_set st.ring_val slot v;
              Array.unsafe_set st.ring_vis slot (grant + lat);
              st.pushed <- st.pushed + 1;
              let sz = st.pushed - st.popped in
              if sz > st.peak then st.peak <- sz;
              prof_produce st ~clk0 ~clk ~grant;
              wake wl_empty
          in
          let consume_q (st : queue_state) q =
            let depth = st.qdepth in
            let wl_empty = st.wl_empty and wl_full = st.wl_full in
            fun () ->
              if st.pushed <= st.popped then
                wait_park (On_queue_empty q) wl_empty (fun () ->
                    st.pushed > st.popped);
              let slot = st.popped mod depth in
              let v = Array.unsafe_get st.ring_val slot in
              let vis = Array.unsafe_get st.ring_vis slot in
              let cell0 = !cell in
              let clk0 = cell0 + !stall in
              let clk = if clk0 < vis then vis else clk0 in
              let grant = if mb_on then bus_grab module_bus clk else clk in
              let t1 = grant + 1 in
              stall := t1 - cell0;
              Array.unsafe_set st.pop_time slot t1;
              st.popped <- st.popped + 1;
              prof_consume st ~clk0 ~clk ~grant;
              wake wl_full;
              v
          in
          let give_s (st : sem_state) =
            fun k ->
              st.count <- st.count + k;
              let cell0 = !cell in
              let clk = cell0 + !stall in
              if clk > st.free_at then st.free_at <- clk;
              let grant = if mb_on then bus_grab module_bus clk else clk in
              stall := grant + 1 - cell0;
              wake st.wl_sem
          in
          let take_s (st : sem_state) s =
            fun k ->
              if st.count < k then
                wait_park (On_sem (s, k)) st.wl_sem (fun () -> st.count >= k);
              st.count <- st.count - k;
              let cell0 = !cell in
              let clk = cell0 + !stall in
              let clk = if clk < st.free_at then st.free_at else clk in
              let grant = if mb_on then bus_grab module_bus clk else clk in
              stall := grant + 2 - cell0 (* §4.2: lower takes >= 2 cycles *)
          in
          {
            Interp.fproduce = Array.init nq (fun q -> produce_q qs.(q) q);
            fconsume = Array.init nq (fun q -> consume_q qs.(q) q);
            fsem_give = Array.init nsems_arr (fun s -> give_s sems.(s));
            fsem_take = Array.init nsems_arr (fun s -> take_s sems.(s) s);
          }
        in
        let make_fast_hw (ti : int) : Interp.fast_handlers =
          let produce_q (st : queue_state) q =
            let depth = st.qdepth in
            let lat = config.queue_latency in
            let wl_empty = st.wl_empty and wl_full = st.wl_full in
            fun v ->
              if st.pushed - st.popped >= depth then
                wait_park (On_queue_full q) wl_full (fun () ->
                    st.pushed - st.popped < depth);
              let slot = st.pushed mod depth in
              let slot_free =
                if st.pushed >= depth then Array.unsafe_get st.pop_time slot
                else 0
              in
              let clk0 = Array.unsafe_get clocks ti in
              let clk = if clk0 < slot_free then slot_free else clk0 in
              let grant =
                if st.allow_burst && clk = st.p_last_end then clk
                else if mb_on then bus_grab module_bus clk
                else clk
              in
              Array.unsafe_set clocks ti (grant + 1);
              Array.unsafe_set st.ring_val slot v;
              Array.unsafe_set st.ring_vis slot (grant + lat);
              st.pushed <- st.pushed + 1;
              let sz = st.pushed - st.popped in
              if sz > st.peak then st.peak <- sz;
              prof_produce st ~clk0 ~clk ~grant;
              wake wl_empty
          in
          let consume_q (st : queue_state) q =
            let depth = st.qdepth in
            let wl_empty = st.wl_empty and wl_full = st.wl_full in
            fun () ->
              if st.pushed <= st.popped then
                wait_park (On_queue_empty q) wl_empty (fun () ->
                    st.pushed > st.popped);
              let slot = st.popped mod depth in
              let v = Array.unsafe_get st.ring_val slot in
              let vis = Array.unsafe_get st.ring_vis slot in
              let clk0 = Array.unsafe_get clocks ti in
              let clk = if clk0 < vis then vis else clk0 in
              let grant = if mb_on then bus_grab module_bus clk else clk in
              let t1 = grant + 1 in
              Array.unsafe_set clocks ti t1;
              Array.unsafe_set st.pop_time slot t1;
              st.popped <- st.popped + 1;
              prof_consume st ~clk0 ~clk ~grant;
              wake wl_full;
              v
          in
          let give_s (st : sem_state) =
            fun k ->
              st.count <- st.count + k;
              let clk = Array.unsafe_get clocks ti in
              if clk > st.free_at then st.free_at <- clk;
              let grant = if mb_on then bus_grab module_bus clk else clk in
              Array.unsafe_set clocks ti (grant + 1);
              wake st.wl_sem
          in
          let take_s (st : sem_state) s =
            fun k ->
              if st.count < k then
                wait_park (On_sem (s, k)) st.wl_sem (fun () -> st.count >= k);
              st.count <- st.count - k;
              let clk = Array.unsafe_get clocks ti in
              let clk = if clk < st.free_at then st.free_at else clk in
              let grant = if mb_on then bus_grab module_bus clk else clk in
              Array.unsafe_set clocks ti
                (grant + 2 (* §4.2: lower takes >= 2 cycles *))
          in
          {
            Interp.fproduce = Array.init nq (fun q -> produce_q qs.(q) q);
            fconsume = Array.init nq (fun q -> consume_q qs.(q) q);
            fsem_give = Array.init nsems_arr (fun s -> give_s sems.(s));
            fsem_take = Array.init nsems_arr (fun s -> take_s sems.(s) s);
          }
        in
        (* Hardware terminator costs over flat per-function arrays,
           resolved once at first entry (the schedule itself comes from
           the process-wide cache); steady state is one physical-equality
           check, two array reads and no allocation per block exit. *)
        let make_term_cost_c (ti : int) : func -> block -> int =
          let cur_f : func option ref = ref None in
          let cur_ii = ref [||] in
          let cur_ns = ref [||] in
          let last_bid = ref (-1) in
          fun f b ->
            (match !cur_f with
            | Some g when g == f -> ()
            | _ ->
                let s = schedule_of f.name in
                cur_f := Some f;
                cur_ii := s.Schedule.ii;
                cur_ns := s.Schedule.nstates;
                (* a function change breaks any pipelined streak, exactly
                   like the interpreted engine's (name, bid) key *)
                last_bid := -1);
            let bid = b.bid in
            let ii = Array.unsafe_get !cur_ii bid in
            let c =
              if ii > 0 && !last_bid = bid then ii
              else Array.unsafe_get !cur_ns bid
            in
            last_bid := bid;
            clocks.(ti) <- clocks.(ti) + c;
            busys.(ti) <- busys.(ti) + c;
            c
        in
        (* Per-function issue slots, clamped to [0, nregs) once per
           function so the per-op path is a single unchecked read (an
           instruction id is always < the function's register count). *)
        let slot_arrays : (string, int array) Hashtbl.t = Hashtbl.create 16 in
        let slots_of (f : func) : int array =
          match Hashtbl.find_opt slot_arrays f.name with
          | Some sl -> sl
          | None ->
              let sa = (schedule_of f.name).Schedule.start_arr in
              let sl =
                Array.init (Twill_ir.Vec.length f.insts) (fun id ->
                    if id < Array.length sa && sa.(id) >= 0 then sa.(id) else 0)
              in
              Hashtbl.replace slot_arrays f.name sl;
              sl
        in
        let make_mem_hook_c (ti : int) (spec : thread_spec) :
            (func -> inst -> unit) option =
          (* contention off makes every grant echo its request — the hook
             would be pure overhead, so don't install one *)
          if spec.local_memory || not mb_on then None
          else
            let cur_f : func option ref = ref None in
            let cur_sl = ref [||] in
            let cur_bt : int option array ref = ref [||] in
            Some
              (fun f i ->
                (match !cur_f with
                | Some g when g == f -> ()
                | _ ->
                    cur_f := Some f;
                    cur_sl := slots_of f;
                    if nbanks > 1 then cur_bt := bank_table_of f);
                let request =
                  Array.unsafe_get clocks ti + Array.unsafe_get !cur_sl i.id
                in
                let grant =
                  if nbanks = 1 then bus_grab memory_bus request
                  else
                    match Array.unsafe_get !cur_bt i.id with
                    | Some b -> bus_grab mem_buses.(b) request
                    | None ->
                        (* all-banks conservative path; identical order and
                           arithmetic to the interpreted engine's *)
                        let g = ref request in
                        for k = 0 to nbanks - 1 do
                          let gk = bus_grab mem_buses.(k) request in
                          if gk > !g then g := gk
                        done;
                        !g
                in
                if grant > request then
                  clocks.(ti) <- clocks.(ti) + (grant - request))
        in
        let start_fiber (body : unit -> unit) () =
          match_with body ()
            {
              retc = (fun () -> ());
              exnc = (fun e -> raise e);
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | E.Park (why, wl) ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          let ti = !running in
                          blocked.(ti) <- why;
                          ready.(ti) <- false;
                          pending.(ti) <- Some (fun () -> continue k ());
                          wl := ti :: !wl)
                  | _ -> None);
            }
        in
        Array.iteri
          (fun ti spec ->
            pending.(ti) <-
              Some
                (start_fiber (fun () ->
                     match spec.trole with
                     | Sw ->
                         let cell = ref 0 and stall = ref 0 in
                         let r =
                           try
                             Interp.run_shared ~fuel:config.fuel ~layout ~mem
                               ~fast_handlers:(make_fast_sw cell stall)
                               ~charge_cycles:true ~ctx:ictx ~cycles_cell:cell
                               ?mem_trace:(mem_trace_of ti spec) m
                               ~entry:spec.tname ~args:[||]
                           with Interp.Out_of_fuel -> raise (out_of_fuel ti)
                         in
                         clocks.(ti) <- !cell + !stall;
                         busys.(ti) <- !cell;
                         finish ti r
                     | Hw ->
                         let r =
                           try
                             Interp.run_shared ~fuel:config.fuel ~layout ~mem
                               ~fast_handlers:(make_fast_hw ti)
                               ~cost:Interp.zero_cost
                               ~term_cost:(make_term_cost_c ti)
                               ~charge_cycles:true ~ctx:ictx
                               ?mem_hook:(make_mem_hook_c ti spec)
                               ?mem_trace:(mem_trace_of ti spec) m
                               ~entry:spec.tname ~args:[||]
                           with Interp.Out_of_fuel -> raise (out_of_fuel ti)
                         in
                         finish ti r)))
          threads;
        (* ring scheduler: cycle thread slots in index order, running
           each ready thread at its turn; [n] consecutive skips with
           unfinished threads means nothing can ever wake — deadlock *)
        let cur = ref 0 in
        let idle_scan = ref 0 in
        while !nfinished < n do
          (if ready.(!cur) then
             match pending.(!cur) with
             | Some resume ->
                 idle_scan := -1;
                 pending.(!cur) <- None;
                 running := !cur;
                 resume ()
             | None ->
                 (* finished thread: its slot stays ready but empty *)
                 ());
          cur := (!cur + 1) mod n;
          incr idle_scan;
          if !idle_scan > n && !nfinished < n then
            raise (Deadlock (deadlock_message threads finished blocked))
        done
  end;
  let ret =
    match results.(master) with
    | Some r -> r.Interp.ret
    | None -> raise (Deadlock "master thread did not finish")
  in
  {
    ret;
    prints = merge_prints ~master results;
    cycles = Array.fold_left max 0 clocks;
    thread_finish = Array.mapi (fun i spec -> (spec.tname, clocks.(i))) threads;
    thread_busy = Array.mapi (fun i spec -> (spec.tname, busys.(i))) threads;
    executed =
      Array.fold_left
        (fun acc r ->
          match r with Some r -> acc + r.Interp.executed | None -> acc)
        0 results;
    queue_peaks = Array.map (fun q -> q.peak) qs;
    queue_profiles = Array.map profile_of qs;
    module_bus_waits = module_bus.Bus.wait_cycles;
    memory_bus_waits =
      Array.fold_left (fun acc b -> acc + b.Bus.wait_cycles) 0 mem_buses;
    mem_bank_grants = Array.map (fun b -> b.Bus.grants) mem_buses;
    mem_bank_waits = Array.map (fun b -> b.Bus.wait_cycles) mem_buses;
  }

(* --- differential engine check ------------------------------------------- *)

exception Engine_mismatch of string

let stats_mismatch (a : stats) (b : stats) : string option =
  let check name fmt x y acc =
    match acc with
    | Some _ -> acc
    | None -> if x = y then None else Some (Printf.sprintf "%s: %s vs %s" name (fmt x) (fmt y))
  in
  let istr = string_of_int in
  None
  |> check "ret" Int32.to_string a.ret b.ret
  |> check "prints"
       (fun p -> String.concat ";" (List.map Int32.to_string p))
       a.prints b.prints
  |> check "cycles" istr a.cycles b.cycles
  |> check "executed" istr a.executed b.executed
  |> check "module_bus_waits" istr a.module_bus_waits b.module_bus_waits
  |> check "memory_bus_waits" istr a.memory_bus_waits b.memory_bus_waits
  |> check "mem_bank_grants"
       (fun q ->
         String.concat "," (List.map string_of_int (Array.to_list q)))
       a.mem_bank_grants b.mem_bank_grants
  |> check "mem_bank_waits"
       (fun q ->
         String.concat "," (List.map string_of_int (Array.to_list q)))
       a.mem_bank_waits b.mem_bank_waits
  |> check "queue_peaks"
       (fun q ->
         String.concat "," (List.map string_of_int (Array.to_list q)))
       a.queue_peaks b.queue_peaks
  |> check "queue_profiles"
       (fun ps ->
         let hist h =
           String.concat "," (List.map string_of_int (Array.to_list h))
         in
         String.concat "|"
           (List.map
              (fun p ->
                Printf.sprintf "p=%d c=%d sf=%d se=%d bw=%d pk=%d occ=[%s] pb=[%s] cb=[%s]"
                  p.qp_produces p.qp_consumes p.qp_stall_full p.qp_stall_empty
                  p.qp_bus_waits p.qp_peak (hist p.qp_occ_hist)
                  (hist p.qp_prod_bursts) (hist p.qp_cons_bursts))
              (Array.to_list ps)))
       a.queue_profiles b.queue_profiles
  |> check "thread_finish"
       (fun t ->
         String.concat ","
           (List.map
              (fun (n, c) -> Printf.sprintf "%s=%d" n c)
              (Array.to_list t)))
       a.thread_finish b.thread_finish
  |> check "thread_busy"
       (fun t ->
         String.concat ","
           (List.map
              (fun (n, c) -> Printf.sprintf "%s=%d" n c)
              (Array.to_list t)))
       a.thread_busy b.thread_busy

let diff_engines ?config ?master (m : modul) ~(threads : thread_spec array)
    ~(queues : Threadgen.queue_info array) ~(nsems : int) () : stats =
  let interp =
    simulate ?config ?master ~engine:Interpreted m ~threads ~queues ~nsems ()
  in
  let compiled =
    simulate ?config ?master ~engine:Compiled m ~threads ~queues ~nsems ()
  in
  (match stats_mismatch interp compiled with
  | None -> ()
  | Some d ->
      raise
        (Engine_mismatch
           (Printf.sprintf "rtsim engines disagree (interpreted vs compiled) on %s" d)));
  compiled
