(* twilld — the persistent Twill compile/simulate daemon.

   Serves the line-delimited JSON protocol of [Twill_serve.Server] over
   a Unix-domain socket: parse/elaborate/schedule/simulate requests with
   content-hash-keyed caches and a persistent worker pool, so repeated
   compiles of the same kernel amortise elaboration across requests
   instead of paying it per process.  Clients: `twillc daemon ...`, or
   anything that can write JSON lines to a socket. *)

open Cmdliner

let socket =
  Arg.(
    value
    & opt string "/tmp/twilld.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ]
        ~doc:
          "Worker domains for the request pool (default: the machine's \
           spare cores).")

let serve_cmd =
  let run socket workers =
    let t = Twill_serve.Server.create ?workers () in
    Fmt.pr "twilld: pid %d listening on %s (%d workers)@." (Unix.getpid ())
      socket
      (Twill.Par.pool_workers t.Twill_serve.Server.pool);
    Twill_serve.Server.serve t ~socket;
    Fmt.pr "twilld: stopped@."
  in
  Cmd.v
    (Cmd.info "twilld"
       ~doc:"Persistent Twill compile/simulate service over a Unix socket")
    Term.(const run $ socket $ workers)

let () = exit (Cmd.eval serve_cmd)
