(* twillc — the Twill command-line driver.

     twillc run FILE.c            execute under all three flows + report
     twillc ir FILE.c             dump optimised IR
     twillc threads FILE.c        dump extracted pipeline-stage functions
     twillc bench NAME            run one bundled CHStone benchmark
     twillc list                  list bundled benchmarks
     twillc emit-verilog FILE.c   emit the design's RTL (-o FILE, --check)
     twillc cosim NAME|FILE.c     co-simulate the emitted RTL vs rtsim
     twillc comm-report NAME      profile + optimize the DSWP channel graph
     twillc fuzz --seed N         differential fuzzing across the stack
     twillc dse [--grid SPEC]     design-space sweep -> Pareto frontier

   Options: --stages K, --sw-frac F, --queue-depth D, --queue-latency L,
   --aggressive-inline, --comm-opt PASSES, --no-auto. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let comm_of_spec spec =
  match Twill.Comm.parse spec with
  | Ok c -> c
  | Error e ->
      Fmt.epr "bad --comm-opt: %s@." e;
      exit 2

let mk_opts stages sw_frac queue_depth queue_latency aggressive comm_spec
    backend mem_banks =
  {
    Twill.default_options with
    partition =
      {
        Twill.Partition.default_config with
        Twill.Partition.nstages = stages;
        sw_fraction = sw_frac;
      };
    queue_depth;
    queue_latency;
    inline_aggressive = aggressive;
    comm = comm_of_spec comm_spec;
    backend;
    mem_banks;
  }

let stages =
  Arg.(value & opt int 3 & info [ "stages" ] ~doc:"Pipeline stage count.")

let sw_frac =
  Arg.(
    value
    & opt float 0.002
    & info [ "sw-frac" ] ~doc:"Targeted work share for the software master.")

let queue_depth =
  Arg.(value & opt int 8 & info [ "queue-depth" ] ~doc:"Queue depth (slots).")

let queue_latency =
  Arg.(
    value & opt int 2
    & info [ "queue-latency" ] ~doc:"Queue give->visible latency in cycles.")

let aggressive =
  Arg.(
    value & flag
    & info [ "aggressive-inline" ] ~doc:"Inline every call before DSWP.")

let comm_opt =
  Arg.(
    value & opt string ""
    & info [ "comm-opt" ] ~docv:"PASSES"
        ~doc:
          "Communication-pattern optimizer passes (comma-separated subset \
           of $(b,licm),$(b,merge),$(b,size),$(b,burst), or $(b,all)); \
           default: none.")

let backend_arg =
  Arg.(
    value
    & opt (enum Twill.Enums.backends) Twill.Schedule.Fsm
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "RTL lowering for the hardware partitions: $(b,fsm) (LegUp-style            monolithic FSM-with-datapath, the default) or $(b,dataflow)            (elastic stages with valid/ready handshake channels).  Unknown            values are rejected with the valid list.")

let mem_banks_arg =
  Arg.(
    value & opt int 1
    & info [ "mem-banks" ] ~docv:"N"
        ~doc:
          "Shared-memory bank count.  Provably-disjoint arrays are \
           partitioned across $(docv) banks by the dependence oracle; \
           hardware threads then schedule with per-bank ordering chains, \
           rtsim arbitrates one memory bus per bank, and the emitted RTL \
           instantiates a banked memory.  $(b,1) (the default) is the \
           single-port behaviour.")

let no_auto =
  Arg.(
    value & flag
    & info [ "no-auto" ] ~doc:"Do not search stage counts; use --stages as-is.")

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let print_report (r : Twill.report) =
  Fmt.pr "== %s ==@." r.Twill.name;
  Fmt.pr "return value   : %ld (all three flows agree)@."
    r.Twill.sw.Twill.ret;
  Fmt.pr "pure SW        : %8d cycles   %6.1f mW@." r.Twill.sw.Twill.cycles
    r.Twill.sw.Twill.power_mw;
  Fmt.pr "pure HW (LegUp): %8d cycles   %6.1f mW   %5d LUTs@."
    r.Twill.hw.Twill.cycles r.Twill.hw.Twill.power_mw
    r.Twill.hw.Twill.area.Twill.Area.luts;
  Fmt.pr "Twill hybrid   : %8d cycles   %6.1f mW   %5d LUTs@."
    r.Twill.twill.Twill.scenario.Twill.cycles
    r.Twill.twill.Twill.scenario.Twill.power_mw
    r.Twill.twill.Twill.scenario.Twill.area.Twill.Area.luts;
  Fmt.pr "speedup vs SW  : %.2fx   vs pure HW: %.2fx@." r.Twill.speedup_vs_sw
    r.Twill.speedup_vs_hw;
  Fmt.pr "extraction     : %d HW threads, %d queues, %d semaphores@."
    r.Twill.twill.Twill.n_hw_threads r.Twill.twill.Twill.nqueues
    r.Twill.twill.Twill.nsems

let run_cmd =
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks no_auto path =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let src = read_file path in
    let r =
      Twill.evaluate ~opts ~auto_stages:(not no_auto)
        ~name:(Filename.basename path) src
    in
    print_report r
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and evaluate a mini-C file")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ file)

let ir_cmd =
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ path =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let m = Twill.compile ~opts (read_file path) in
    Fmt.pr "%s@." (Twill_ir.Printer.modul_to_string m)
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the optimised IR")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ file)

let threads_cmd =
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ path =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let m = Twill.compile ~opts (read_file path) in
    let t = Twill.extract ~opts m in
    Array.iteri
      (fun s name ->
        let role =
          match t.Twill.Dswp.roles.(s) with
          | Twill.Partition.Sw -> "software"
          | Twill.Partition.Hw -> "hardware"
        in
        Fmt.pr "--- stage %d (%s) ---@.%s@." s role
          (Twill_ir.Printer.func_to_string
             (Twill.Ir.find_func t.Twill.Dswp.modul name)))
      t.Twill.Dswp.stages;
    Fmt.pr "queues:@.";
    Array.iter
      (fun (q : Twill.Threadgen.queue_info) ->
        Fmt.pr "  q%d %s %dx%db stage %d -> %d%s%s@." q.Twill.Threadgen.qid
          q.Twill.Threadgen.purpose q.Twill.Threadgen.depth
          q.Twill.Threadgen.width_bits q.Twill.Threadgen.src_stage
          q.Twill.Threadgen.dst_stage
          (match q.Twill.Threadgen.merged_into with
          | Some t -> Printf.sprintf " (merged into q%d)" t
          | None -> "")
          (if q.Twill.Threadgen.burst then " (burst)" else ""))
      t.Twill.Dswp.queues
  in
  Cmd.v (Cmd.info "threads" ~doc:"Dump the extracted pipeline threads")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ file)

let bench_cmd =
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let run name =
    let b = Twill_chstone.Chstone.find name in
    print_report (Twill.evaluate ~name b.Twill_chstone.Chstone.source)
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run a bundled CHStone benchmark")
    Term.(const run $ name_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Twill_chstone.Chstone.benchmark) ->
        Fmt.pr "%-10s %s@." b.Twill_chstone.Chstone.name
          b.Twill_chstone.Chstone.description)
      Twill_chstone.Chstone.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled benchmarks") Term.(const run $ const ())

let emit_c_cmd =
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ path =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let m = Twill.compile ~opts (read_file path) in
    let t = Twill.extract ~opts m in
    let master = t.Twill.Dswp.stages.(t.Twill.Dswp.master) in
    print_string (Twill_cgen.Cemit.emit_sw_program t.Twill.Dswp.modul ~entry:master)
  in
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Emit the software master thread as C against the Twill runtime API")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ file)

let emit_verilog_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the Verilog to $(docv) instead of standard output.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the structural checker over the emitted design and exit \
             nonzero on failure.")
  in
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ output check path =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let m = Twill.compile ~opts (read_file path) in
    let t = Twill.extract ~opts m in
    let design =
      Twill_vgen.Vruntime.emit_design ~backend ~mem_banks:opts.Twill.mem_banks t
    in
    (match output with
    | None -> print_string design
    | Some f ->
        let oc = open_out f in
        output_string oc design;
        close_out oc);
    if check then
      match Twill_vgen.Vcheck.check design with
      | Ok () -> Fmt.epr "emit-verilog: check passed@."
      | Error e ->
          Fmt.epr "emit-verilog: check failed: %s@."
            (Twill_vgen.Vcheck.error_to_string e);
          exit 1
  in
  Cmd.v
    (Cmd.info "emit-verilog"
       ~doc:
         "Emit the hardware threads and the runtime system as Verilog \
          (Figure 4.1)")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ output $ check $ file)

let cosim_cmd =
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"PREFIX"
          ~doc:"Dump one VCD waveform per RTL instance under $(docv).")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             (("auto", None)
             :: List.map (fun (s, e) -> (s, Some e)) Twill.Enums.vsim_engines))
          None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Vsim scheduling engine: $(b,compiled), $(b,levelized), \
             $(b,fixpoint), or $(b,auto) (compiled with fixpoint fallback \
             on combinational loops).  The run report shows the engine \
             actually used.")
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH_OR_FILE")
  in
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ vcd engine name =
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let src =
      if Sys.file_exists name then read_file name
      else (Twill_chstone.Chstone.find name).Twill_chstone.Chstone.source
    in
    let m = Twill.compile ~opts src in
    let t = Twill.extract ~opts m in
    let r = Twill.cosim ~opts ?engine ?vcd t in
    Fmt.pr "== cosim %s ==@." (Filename.basename name);
    Fmt.pr "engine         : %s@." r.Twill.Cosim.rtl_engine;
    Fmt.pr "RTL (vsim)     : ret=%ld  %8d harness cycles@."
      r.Twill.Cosim.rtl_ret r.Twill.Cosim.rtl_cycles;
    Fmt.pr "model (rtsim)  : ret=%ld  %8d cycles@." r.Twill.Cosim.model_ret
      r.Twill.Cosim.model_cycles;
    Fmt.pr "prints         : %d (RTL) vs %d (model)@."
      (List.length r.Twill.Cosim.rtl_prints)
      (List.length r.Twill.Cosim.model_prints);
    if r.Twill.Cosim.agree then Fmt.pr "verdict        : AGREE@."
    else begin
      Fmt.pr "verdict        : DISAGREE@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:
         "Co-simulate the emitted RTL of a benchmark or mini-C file against \
          the rtsim reference")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ vcd $ engine $ name_arg)

let comm_report_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH_OR_FILE")
  in
  let run stages sw_frac qd ql aggr comm_spec backend mem_banks _ name =
    let comm_spec = if comm_spec = "" then "all" else comm_spec in
    let opts = mk_opts stages sw_frac qd ql aggr comm_spec backend mem_banks in
    let src =
      if Sys.file_exists name then read_file name
      else (Twill_chstone.Chstone.find name).Twill_chstone.Chstone.source
    in
    let m = Twill.compile ~opts src in
    let s = Twill.comm_summarize ~opts m in
    Fmt.pr "== comm-report %s ==@." (Filename.basename name);
    List.iter (Fmt.pr "%s@.") (Twill.Comm.report_lines s.Twill.comm_rep);
    Fmt.pr "seed profile (unoptimized extraction):@.";
    Fmt.pr "  %-4s %-6s %8s %8s %9s %9s %7s %4s %6s@." "qid" "kind" "prod"
      "cons" "stallF" "stallE" "busW" "peak" "runs2+";
    Array.iteri
      (fun qid (p : Twill.Sim.queue_profile) ->
        if p.Twill.Sim.qp_produces > 0 then
          let q = s.Twill.comm_queues.(qid) in
          let runs =
            Array.fold_left ( + ) 0
              (Array.sub p.Twill.Sim.qp_prod_bursts 1
                 (Array.length p.Twill.Sim.qp_prod_bursts - 1))
          in
          Fmt.pr "  q%-3d %-6s %8d %8d %9d %9d %7d %4d %6d@." qid
            q.Twill.Threadgen.purpose p.Twill.Sim.qp_produces
            p.Twill.Sim.qp_consumes p.Twill.Sim.qp_stall_full
            p.Twill.Sim.qp_stall_empty p.Twill.Sim.qp_bus_waits
            p.Twill.Sim.qp_peak runs)
      s.Twill.comm_profile;
    Fmt.pr "cycles         : %d (base) -> %d (optimized), delta %+d@."
      s.Twill.comm_base_cycles s.Twill.comm_opt_cycles
      (s.Twill.comm_opt_cycles - s.Twill.comm_base_cycles)
  in
  Cmd.v
    (Cmd.info "comm-report"
       ~doc:
         "Profile the DSWP channel graph of a benchmark or mini-C file and \
          show what the communication optimizer ($(b,--comm-opt), default \
          $(b,all)) does to it: per-channel occupancy/stall/burst counters, \
          pass actions, and the base-vs-optimized cycle counts")
    Term.(
      const run $ stages $ sw_frac $ queue_depth $ queue_latency $ aggressive
      $ comm_opt $ backend_arg $ mem_banks_arg
      $ no_auto $ name_arg)

let fuzz_cmd =
  let module F = Twill_fuzz in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let cases =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~doc:"Number of generated programs.")
  in
  let max_stage =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun l -> (F.Oracle.limit_to_string l, l))
                F.Oracle.all_limits))
          F.Oracle.L_vsim
      & info [ "max-stage" ] ~docv:"STAGE"
          ~doc:
            "Deepest observation point to compare: $(b,ast), $(b,ir), \
             $(b,opt), $(b,rtsim) or $(b,vsim) (the default; RTL \
             co-simulation, much slower per case).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write minimized repros and a MANIFEST into $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Instead of generating cases, re-run every repro in $(docv) and \
             report which still diverge.")
  in
  let break_pass =
    Arg.(
      value
      & opt (some string) None
      & info [ "break-pass" ] ~docv:"PASS"
          ~doc:
            "Plant a deliberate miscompilation after the named pipeline \
             stage (fault-injection demo; see $(b,--max-stage opt)).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit nonzero if any divergence is found (or, with \
             $(b,--replay), if any repro went stale).")
  in
  let fuzz_backend =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun b -> (F.Oracle.backends_to_string b, b))
                F.Oracle.all_backends))
          F.Oracle.B_both
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "RTL lowering(s) the vsim observation points exercise: \
             $(b,fsm), $(b,dataflow) or $(b,both) (the default: every \
             RTL-reaching case co-simulates both backends and any \
             disagreement is a divergence).")
  in
  let fuzz_mem_banks =
    Arg.(
      value & opt int 1
      & info [ "mem-banks" ] ~docv:"N"
          ~doc:
            "Shared-memory bank count for the rtsim and co-simulation \
             observation points (values > 1 also arm the runtime alias \
             checker, so dependence-oracle optimism surfaces as a \
             divergence instead of silent corruption).")
  in
  let run seed cases limit backends out replay break_pass strict mem_banks =
    match replay with
    | Some dir ->
        let rs = F.Campaign.replay ~dir () in
        List.iter
          (fun (r : F.Campaign.replay_result) ->
            Fmt.pr "%-18s %s  (%s)@." r.F.Campaign.rp_file
              (if r.F.Campaign.rp_still_diverges then "DIVERGES" else "agrees")
              r.F.Campaign.rp_detail)
          rs;
        let stale =
          List.filter (fun r -> not r.F.Campaign.rp_still_diverges) rs
        in
        Fmt.pr "replayed %d repro(s), %d stale@." (List.length rs)
          (List.length stale);
        if strict && stale <> [] then exit 1
    | None ->
        (match break_pass with
        | Some p when not (List.mem p Twill.Pipeline.stage_names) ->
            Fmt.epr "fuzz: unknown pass %S (stages: %s)@." p
              (String.concat ", " Twill.Pipeline.stage_names);
            exit 2
        | _ -> ());
        let opts =
          {
            Twill.default_options with
            pipeline_break = break_pass;
            mem_banks;
            check_memdep = mem_banks > 1;
          }
        in
        let t0 = Unix.gettimeofday () in
        let s = F.Campaign.run ~opts ~limit ~backends ~seed ~cases () in
        let dt = Unix.gettimeofday () -. t0 in
        print_string (F.Campaign.summary_to_string s);
        (match out with
        | Some dir ->
            let files = F.Campaign.write_corpus ?break_pass ~dir s in
            Fmt.pr "  corpus: %d file(s) in %s@." (List.length files) dir
        | None -> ());
        (* timing goes to stderr so stdout stays reproducible *)
        Fmt.epr "fuzz: %d cases in %.1fs (%.1f cases/sec)@." cases dt
          (float_of_int cases /. dt);
        if strict && s.F.Campaign.s_repros <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the whole stack: random mini-C programs \
          through every observation point (AST, IR, each optimisation \
          prefix, rtsim, RTL co-simulation), with shrinking and pass \
          bisection of any divergence")
    Term.(
      const run $ seed $ cases $ max_stage $ fuzz_backend $ out $ replay
      $ break_pass $ strict $ fuzz_mem_banks)

(* --- twilld client: `twillc daemon ...` --------------------------------- *)

module Serve_json = Twill_serve.Json
(* ------------------------------------------------------------------ *)
(* dse: design-space sweeps                                            *)
(* ------------------------------------------------------------------ *)

module Dse_grid = Twill_dse.Grid
module Dse_pareto = Twill_dse.Pareto
module Dse = Twill_dse.Dse

let grid_arg =
  Arg.(
    value & opt string ""
    & info [ "grid" ] ~docv:"SPEC"
        ~doc:
          "Grid spec, e.g. $(b,kernels=mips,sha;queue_latency=2,8,32); \
           unnamed axes keep the default sweep's values.")

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N" ~doc:"Evaluate a deterministic N-point subset.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Sampling seed.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Round-robin the sweep into K domain-parallel shards (0: one task \
           per extraction group).  Results are identical either way.")

let dse_cmd =
  let run grid_spec sample seed shards json out cold =
    let grid =
      if grid_spec = "" then Dse_grid.default
      else
        match Dse_grid.parse grid_spec with
        | Ok g -> g
        | Error e ->
            Fmt.epr "bad --grid: %s@." e;
            exit 2
    in
    let t0 = Unix.gettimeofday () in
    let s = Dse.run ~shards ~seed ?sample grid in
    let wall = Unix.gettimeofday () -. t0 in
    let r = s.Dse.reuse in
    Fmt.epr
      "%d points in %.2fs (%.0f/s): %d compiles (%d full, %d prefix-reused), \
       %d extractions, %d simulations; compile hit-rate %.1f%%, extract \
       hit-rate %.1f%%@."
      r.Dse.points wall
      (float_of_int r.Dse.points /. wall)
      r.Dse.compiles r.Dse.full_compiles r.Dse.prefix_reused r.Dse.extractions
      r.Dse.simulations
      (100.0 *. Dse.hit_rate ~paid:r.Dse.compiles ~total:r.Dse.points)
      (100.0 *. Dse.hit_rate ~paid:r.Dse.extractions ~total:r.Dse.points);
    if cold then begin
      let t1 = Unix.gettimeofday () in
      let c = Dse.run_cold ~seed ?sample grid in
      let cold_wall = Unix.gettimeofday () -. t1 in
      let same = Dse.results_digest c.Dse.results = Dse.results_digest s.Dse.results in
      Fmt.epr
        "cold (no reuse): %.2fs — incremental speedup %.1fx, results %s@."
        cold_wall (cold_wall /. wall)
        (if same then "identical" else "DIVERGED");
      if not same then exit 1
    end;
    if json then begin
      let body = Dse.json_of_sweep s in
      match out with
      | None -> print_string body
      | Some path ->
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          Fmt.epr "wrote %s@." path
    end
    else begin
      Fmt.pr "Pareto frontier (%d of %d points):@." (List.length s.Dse.frontier)
        (List.length s.Dse.results);
      Fmt.pr "  %-34s %10s %8s %10s@." "point" "cycles" "LUTs" "power";
      List.iter
        (fun (res : Dse_pareto.result) ->
          let m = res.Dse_pareto.metrics in
          Fmt.pr "  %-34s %10d %8d %8.1fmW@."
            (Dse_grid.point_label res.Dse_pareto.point)
            m.Dse_pareto.cycles m.Dse_pareto.luts m.Dse_pareto.power_mw)
        s.Dse.frontier;
      Fmt.pr "sensitivity (mean slowdown vs axis baseline):@.";
      List.iter
        (fun (sv : Dse_pareto.sensitivity) ->
          Fmt.pr "  %-14s = %-6s %6.3fx  (min %.3f, max %.3f, n=%d)@."
            sv.Dse_pareto.axis sv.Dse_pareto.value sv.Dse_pareto.mean_slowdown
            sv.Dse_pareto.min_slowdown sv.Dse_pareto.max_slowdown
            sv.Dse_pareto.n)
        s.Dse.sensitivities
    end
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Sweep a design-space grid (kernel x partition x queue x engine) \
          with incremental compile/extract reuse and report the Pareto \
          frontier over (cycles, LUTs, power)")
    Term.(
      const run $ grid_arg $ sample_arg $ seed_arg $ shards_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the sweep as JSON.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON to FILE.")
      $ Arg.(
          value & flag
          & info [ "cold" ]
              ~doc:
                "Also run the sweep without any reuse and report the \
                 incremental engine's speedup (exits 1 if results differ)."))

module Serve_client = Twill_serve.Client
module Serve_server = Twill_serve.Server

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/twilld.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"twilld Unix-domain socket path.")

(* a kernel name from the bundled CHStone registry, or a mini-C file *)
let source_of (what : string) : string =
  if Sys.file_exists what then read_file what
  else (Twill_chstone.Chstone.find what).Twill_chstone.Chstone.source

let with_client socket f =
  let c = Serve_client.connect ~retries:100 socket in
  Fun.protect ~finally:(fun () -> Serve_client.close c) (fun () -> f c)

let daemon_ping_cmd =
  let run socket =
    with_client socket (fun c ->
        let r = Serve_client.request c (Serve_json.Obj [ ("cmd", Serve_json.Str "ping") ]) in
        Fmt.pr "%s@." (Serve_json.to_string r);
        if Serve_json.bool_field "ok" r <> Some true then exit 1)
  in
  Cmd.v (Cmd.info "ping" ~doc:"Probe a running twilld") Term.(const run $ socket_arg)

let daemon_stats_cmd =
  let run socket =
    with_client socket (fun c ->
        Fmt.pr "%s@."
          (Serve_json.to_string
             (Serve_client.request c (Serve_json.Obj [ ("cmd", Serve_json.Str "stats") ]))))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print twilld cache/request counters")
    Term.(const run $ socket_arg)

let daemon_stop_cmd =
  let run socket =
    with_client socket (fun c ->
        Fmt.pr "%s@."
          (Serve_json.to_string
             (Serve_client.request c (Serve_json.Obj [ ("cmd", Serve_json.Str "stop") ]))))
  in
  Cmd.v (Cmd.info "stop" ~doc:"Shut a running twilld down")
    Term.(const run $ socket_arg)

(* the daemon's "backend" request field, validated server-side too *)
let daemon_backend =
  Arg.(
    value
    & opt (enum Twill.Enums.backends) Twill.Schedule.Fsm
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "RTL lowering the simulation replays: $(b,fsm) (default) or \
           $(b,dataflow).")

let simulate_req stages qd ql backend mem_banks what =
  Serve_json.Obj
    [
      ("cmd", Serve_json.Str "simulate");
      ("src", Serve_json.Str (source_of what));
      ("nstages", Serve_json.Int stages);
      ("queue_depth", Serve_json.Int qd);
      ("queue_latency", Serve_json.Int ql);
      ("backend", Serve_json.Str (Twill.Schedule.backend_name backend));
      ("mem_banks", Serve_json.Int mem_banks);
    ]

let daemon_simulate_cmd =
  let run socket stages qd ql backend mem_banks what =
    with_client socket (fun c ->
        let r =
          Serve_client.request c (simulate_req stages qd ql backend mem_banks what)
        in
        Fmt.pr "%s@." (Serve_json.to_string r);
        if Serve_json.bool_field "ok" r <> Some true then exit 1)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a kernel (bundled name or mini-C file) through twilld")
    Term.(
      const run $ socket_arg $ stages $ queue_depth $ queue_latency
      $ daemon_backend $ mem_banks_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME|FILE"))

let daemon_check_cmd =
  let run socket stages qd ql backend mem_banks whats =
    (* the CI smoke: every daemon response must be byte-identical to the
       same request handled in-process (zero-worker local server) *)
    let local = Serve_server.create ~workers:0 () in
    let failures = ref 0 in
    with_client socket (fun c ->
        List.iter
          (fun what ->
            let req = simulate_req stages qd ql backend mem_banks what in
            let remote = Serve_json.to_string (Serve_client.request c req) in
            let here = Serve_json.to_string (Serve_server.handle local req) in
            if remote = here then Fmt.pr "%-10s OK %s@." what remote
            else begin
              incr failures;
              Fmt.pr "%-10s MISMATCH@.  daemon:     %s@.  in-process: %s@."
                what remote here
            end)
          whats);
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Simulate kernels through twilld and assert the responses are \
          byte-identical to in-process results (exit 1 on any mismatch)")
    Term.(
      const run $ socket_arg $ stages $ queue_depth $ queue_latency
      $ daemon_backend $ mem_banks_arg
      $ Arg.(non_empty & pos_all string [] & info [] ~docv:"NAME|FILE..."))

let daemon_bench_cmd =
  let run socket stages qd ql backend mem_banks what iters =
    with_client socket (fun c ->
        let req = simulate_req stages qd ql backend mem_banks what in
        let t0 = Unix.gettimeofday () in
        ignore (Serve_client.request c req);
        let cold = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        for _ = 1 to iters do
          ignore (Serve_client.request c req)
        done;
        let warm = (Unix.gettimeofday () -. t1) /. float_of_int iters in
        Fmt.pr
          "first request %.1f ms, warm request %.3f ms (x%d), speedup %.0fx@."
          (cold *. 1e3) (warm *. 1e3) iters (cold /. warm))
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Measure cold-vs-warm twilld request latency for one kernel")
    Term.(
      const run $ socket_arg $ stages $ queue_depth $ queue_latency
      $ daemon_backend $ mem_banks_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME|FILE")
      $ Arg.(value & opt int 20 & info [ "iters" ] ~doc:"Warm iterations."))

let daemon_dse_cmd =
  let run socket grid_spec sample seed =
    with_client socket (fun c ->
        let req =
          Serve_json.Obj
            (("cmd", Serve_json.Str "dse")
            :: (if grid_spec = "" then []
                else [ ("grid", Serve_json.Str grid_spec) ])
            @ (match sample with
              | None -> []
              | Some n -> [ ("sample", Serve_json.Int n) ])
            @ [ ("seed", Serve_json.Int seed) ])
        in
        let r = Serve_client.request c req in
        Fmt.pr "%s@." (Serve_json.to_string r);
        if Serve_json.bool_field "ok" r <> Some true then exit 1)
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Run a design-space sweep on twilld; repeated sweeps reuse the \
          daemon's persistent elaboration cache")
    Term.(const run $ socket_arg $ grid_arg $ sample_arg $ seed_arg)

let daemon_comm_cmd =
  let run socket stages qd ql comm_spec what =
    let comm_spec = if comm_spec = "" then "all" else comm_spec in
    (* validate locally for a friendly error before shipping the spec *)
    ignore (comm_of_spec comm_spec);
    with_client socket (fun c ->
        let req =
          Serve_json.Obj
            [
              ("cmd", Serve_json.Str "comm");
              ("src", Serve_json.Str (source_of what));
              ("nstages", Serve_json.Int stages);
              ("queue_depth", Serve_json.Int qd);
              ("queue_latency", Serve_json.Int ql);
              ("comm", Serve_json.Str comm_spec);
            ]
        in
        let r = Serve_client.request c req in
        Fmt.pr "%s@." (Serve_json.to_string r);
        if Serve_json.bool_field "ok" r <> Some true then exit 1)
  in
  Cmd.v
    (Cmd.info "comm"
       ~doc:
         "Run the communication-pattern report for a kernel through twilld \
          (digest-cached like every other daemon request)")
    Term.(
      const run $ socket_arg $ stages $ queue_depth $ queue_latency $ comm_opt
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME|FILE"))

let daemon_cmd =
  Cmd.group
    (Cmd.info "daemon"
       ~doc:
         "Talk to a running twilld (persistent compile/simulate service); \
          start one with the twilld executable")
    [
      daemon_ping_cmd; daemon_stats_cmd; daemon_stop_cmd; daemon_simulate_cmd;
      daemon_check_cmd; daemon_bench_cmd; daemon_dse_cmd; daemon_comm_cmd;
    ]

let () =
  let doc = "Twill: hybrid microcontroller-FPGA parallelising compiler" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "twillc" ~doc)
          [
            run_cmd; ir_cmd; threads_cmd; bench_cmd; list_cmd; emit_c_cmd;
            emit_verilog_cmd; cosim_cmd; comm_report_cmd; fuzz_cmd; dse_cmd;
            daemon_cmd;
          ]))
